"""Analytical systolic-array compute model (Sec. IV-A substitution).

Models a TPU-like R x C output-stationary systolic array, in the style of
the analytical simulators the paper cites ([12] SIGMA's analytical mode,
[7] SCALE-sim).  A GEMM of (M x K) @ (K x N) is tiled into
``ceil(M/R) * ceil(N/C)`` output tiles; each tile streams K partial sums
through the array after a fill/drain of ``2R + C - 2`` cycles.

On top of the GEMM delay the model adds (exactly as the paper describes
its own usage): a parameterized per-layer delay for the non-GEMM parts of
the layer, and a stall term when limited DRAM bandwidth cannot feed the
array (roofline).  ``ComputeConfig.compute_scale`` scales effective
throughput for the Fig. 18 compute-power sensitivity study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compute.gemm import GemmShape
from repro.config.parameters import ComputeConfig
from repro.config.units import Clock, DEFAULT_CLOCK
from repro.errors import WorkloadError


@dataclass(frozen=True)
class ComputeEstimate:
    """The breakdown of one layer-phase's compute delay."""

    gemm_cycles: float
    dram_stall_cycles: float
    overhead_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.gemm_cycles + self.dram_stall_cycles + self.overhead_cycles


class SystolicArrayModel:
    """Analytical delay model for a 256x256 TPU-like accelerator."""

    def __init__(self, config: ComputeConfig, clock: Clock = DEFAULT_CLOCK):
        self.config = config
        self.clock = clock
        self._dram_bytes_per_cycle = clock.bandwidth_bytes_per_cycle(
            config.dram_bandwidth_gbps
        )

    def gemm_cycles(self, shape: GemmShape) -> float:
        """Raw array cycles for one GEMM.

        An idealized flexible dataflow in the spirit of SIGMA [12], the
        paper's compute model: narrow output tiles are packed side by side
        and deep accumulations are split across PEs through the flexible
        reduction network, so the array sustains its full ``R*C``
        MACs/cycle in the streaming phase; the pipeline fill/drain
        ``2R + C - 2`` is paid once per GEMM (double-buffered tiles).
        Quantization losses are folded into the per-layer non-GEMM
        overhead.
        """
        rows, cols = self.config.array_rows, self.config.array_cols
        fill_drain = 2 * rows + cols - 2
        return fill_drain + math.ceil(shape.macs / (rows * cols))

    def dram_cycles(self, shape: GemmShape) -> float:
        """Cycles to stream the GEMM operands/results from/to DRAM."""
        bytes_touched = shape.bytes_touched(self.config.bytes_per_element)
        return bytes_touched / self._dram_bytes_per_cycle

    def io_cycles(self, io_bytes: float) -> float:
        """Cycles to stream an explicit byte count from/to DRAM (used when
        the caller knows the real tensor sizes — im2col-expanded GEMM
        operands overcount convolution input reuse by the kernel area)."""
        if io_bytes < 0:
            raise WorkloadError(f"io_bytes must be >= 0: {io_bytes}")
        return io_bytes / self._dram_bytes_per_cycle

    def estimate(
        self,
        shapes: list[GemmShape] | GemmShape,
        io_bytes: float | None = None,
    ) -> ComputeEstimate:
        """Layer-phase delay: max(GEMM, DRAM) roofline + fixed overhead,
        all divided by ``compute_scale`` (Fig. 18 scales the NPU's whole
        effective compute power).

        A layer phase may consist of several GEMMs (e.g. the Q/K/V
        projections of one attention layer); they execute back to back.
        ``io_bytes`` overrides the DRAM traffic estimate with the caller's
        actual tensor footprint.
        """
        if isinstance(shapes, GemmShape):
            shapes = [shapes]
        if not shapes:
            raise WorkloadError("estimate() needs at least one GEMM shape")
        # gemm_cycles are NPU core cycles; timing below is in network
        # cycles, hence the clock_ghz division.  compute_scale scales the
        # whole accelerator (array + memory system) for Fig. 18.
        scale = self.config.compute_scale
        gemm = sum(self.gemm_cycles(s) for s in shapes) / self.config.clock_ghz / scale
        if io_bytes is not None:
            dram = self.io_cycles(io_bytes) / scale
        else:
            dram = sum(self.dram_cycles(s) for s in shapes) / scale
        stall = max(0.0, dram - gemm)
        return ComputeEstimate(
            gemm_cycles=gemm,
            dram_stall_cycles=stall,
            overhead_cycles=self.config.non_gemm_overhead_cycles / scale,
        )

    def layer_cycles(
        self,
        shapes: list[GemmShape] | GemmShape,
        io_bytes: float | None = None,
    ) -> float:
        """Convenience: total cycles of :meth:`estimate`."""
        return self.estimate(shapes, io_bytes=io_bytes).total_cycles
