"""An alternative GPU-style analytical compute model.

Sec. IV-A: "it is possible to use alternate compute models ... or a GPU
simulator as well".  This model follows the classic GPU roofline: a GEMM
runs at ``min(peak_flops, tiles x sm_efficiency)`` bounded by HBM
bandwidth, with a kernel-launch overhead per GEMM.  It exposes the same
``estimate`` / ``layer_cycles`` interface as
:class:`repro.compute.systolic.SystolicArrayModel`, so any model builder
can swap it in via the ``compute=`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compute.gemm import GemmShape
from repro.compute.systolic import ComputeEstimate
from repro.config.units import Clock, DEFAULT_CLOCK
from repro.errors import ConfigError, WorkloadError


@dataclass(frozen=True)
class GpuConfig:
    """A V100-class default: ~125 TFLOP/s tensor cores, 900 GB/s HBM2."""

    peak_tflops: float = 125.0
    dram_bandwidth_gbps: float = 900.0
    kernel_launch_cycles: float = 2000.0
    #: Achievable fraction of peak for dense GEMMs.
    mma_efficiency: float = 0.7
    compute_scale: float = 1.0
    bytes_per_element: int = 4

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0:
            raise ConfigError("peak_tflops must be positive")
        if self.dram_bandwidth_gbps <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if self.kernel_launch_cycles < 0:
            raise ConfigError("kernel launch overhead must be >= 0")
        if not 0 < self.mma_efficiency <= 1:
            raise ConfigError("mma_efficiency must be in (0, 1]")
        if self.compute_scale <= 0:
            raise ConfigError("compute_scale must be positive")


class GpuComputeModel:
    """Roofline GPU model with per-kernel launch overhead."""

    def __init__(self, config: GpuConfig | None = None,
                 clock: Clock = DEFAULT_CLOCK):
        self.config = config if config is not None else GpuConfig()
        self.clock = clock
        flops_per_second = self.config.peak_tflops * 1e12 * self.config.mma_efficiency
        self._macs_per_cycle = flops_per_second / 2 / clock.frequency_hz
        self._dram_bytes_per_cycle = clock.bandwidth_bytes_per_cycle(
            self.config.dram_bandwidth_gbps)

    def gemm_cycles(self, shape: GemmShape) -> float:
        return shape.macs / self._macs_per_cycle

    def io_cycles(self, io_bytes: float) -> float:
        if io_bytes < 0:
            raise WorkloadError(f"io_bytes must be >= 0: {io_bytes}")
        return io_bytes / self._dram_bytes_per_cycle

    def estimate(
        self,
        shapes: list[GemmShape] | GemmShape,
        io_bytes: float | None = None,
    ) -> ComputeEstimate:
        if isinstance(shapes, GemmShape):
            shapes = [shapes]
        if not shapes:
            raise WorkloadError("estimate() needs at least one GEMM shape")
        scale = self.config.compute_scale
        gemm = sum(self.gemm_cycles(s) for s in shapes) / scale
        if io_bytes is not None:
            dram = self.io_cycles(io_bytes) / scale
        else:
            dram = sum(
                self.io_cycles(s.bytes_touched(self.config.bytes_per_element))
                for s in shapes
            ) / scale
        stall = max(0.0, dram - gemm)
        launches = len(shapes) * self.config.kernel_launch_cycles / scale
        return ComputeEstimate(
            gemm_cycles=gemm,
            dram_stall_cycles=stall,
            overhead_cycles=launches,
        )

    def layer_cycles(
        self,
        shapes: list[GemmShape] | GemmShape,
        io_bytes: float | None = None,
    ) -> float:
        return self.estimate(shapes, io_bytes=io_bytes).total_cycles
