"""Discrete-event simulation engine.

ASTRA-SIM uses an event-driven execution model with a single event queue
implemented in the system layer and exposed upwards to the workload layer
(Sec. IV of the paper).  This module provides that queue — since the
PR 10 perf work, an *adaptive calendar queue*:

* Small populations run on a plain binary heap (``heapq`` compares plain
  ``(time, tiebreak, seq)`` tuples entirely in C — unbeatable below a
  couple thousand pending events).
* Once the live population crosses :attr:`EventQueue.CALENDAR_MIN_PENDING`
  the queue upgrades itself to a bucketed calendar: events land in
  power-of-two-wide time buckets (a sparse dict keyed by
  ``int(time * 2**-width_exp)``), a small min-heap of occupied bucket
  indices finds the next non-empty bucket in O(log #buckets) — the
  *idle-gap fast-forward*: a quiescent stretch of simulated time costs
  one index-heap pop no matter how many empty buckets it spans — and
  each bucket is sorted lazily when it becomes the drain target.  The
  bucket width is auto-tuned from the observed spacing of queued event
  times and re-tuned from drain-side occupancy feedback.
* Events beyond :attr:`EventQueue.CALENDAR_SPAN` buckets in the future
  sit in an *overflow* heap and migrate into buckets as the calendar
  advances; distributions the calendar cannot bucket efficiently
  (occupancy pinned at ~1 event/bucket after repeated retunes) fall
  back to the plain heap for the rest of the run.

The executed event order is ``(time, tiebreak, seq)`` in every mode and
across every mode switch, retune and compaction — the structures differ,
the schedule does not (see docs/DETERMINISM.md).

Time is kept in floating-point *cycles*.  The mapping between cycles and
wall-clock seconds is owned by the configuration layer (``ClockConfig``),
not by the engine.
"""

from __future__ import annotations

import heapq
import itertools
import math
from bisect import insort
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SimulationError

EventCallback = Callable[[], None]


@dataclass(slots=True)
class _ScheduledEvent:
    """Mutable per-event state (cancellation, fired flag).

    The queue's structures store plain ``(time, tiebreak, seq, event)``
    tuples — heapq and ``list.sort`` then compare entries entirely in C
    (the ``seq`` field is unique, so the event object in slot 3 is never
    reached by a comparison), which is the engine's single hottest code
    path.  The ordering semantics: events scheduled for the same time
    fire in the order they were scheduled (deterministic FIFO tie-break);
    ``tiebreak`` is 0 unless a :attr:`EventQueue.tie_breaker` hook is
    installed, in which case it permutes the drain order of
    same-timestamp events (the schedule-perturbation race detector,
    :mod:`repro.sanitize.schedule`).  ``slots=True``: millions of these
    live in the queue of a long run, and the hot loop touches
    ``.time``/``.cancelled`` on every pop.
    """

    time: float
    tiebreak: int
    seq: int
    callback: EventCallback
    cancelled: bool = False
    fired: bool = False


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`; allows cancellation."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: _ScheduledEvent, queue: "EventQueue"):
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """The simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """Whether the event has already executed."""
        return self._event.fired

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; lazy removal.

        Cancelling an event that already fired is a no-op: the event is no
        longer queued, so counting it as cancelled-in-queue would skew
        :attr:`EventQueue.pending` permanently (the transport layer cancels
        delivery timers that may have just fired).
        """
        if not self._event.cancelled and not self._event.fired:
            self._event.cancelled = True
            self._queue._note_cancel()


class EventQueue:
    """A deterministic discrete-event queue.

    >>> q = EventQueue()
    >>> fired = []
    >>> _ = q.schedule_at(5.0, lambda: fired.append("a"))
    >>> _ = q.schedule_at(2.0, lambda: fired.append("b"))
    >>> q.run()
    >>> fired
    ['b', 'a']
    """

    #: Lazy-removal compaction: once at least this many cancelled entries
    #: sit in the queue *and* they outnumber the live ones, the structures
    #: are rebuilt without them.  Long fuzz runs under the reliable
    #: transport cancel one delivery timer per message and would otherwise
    #: grow the queue without bound.
    COMPACT_MIN_CANCELLED = 1024

    #: Live population at which the plain binary heap upgrades to the
    #: calendar.  Below this, C-implemented heapq wins outright; above it
    #: the O(1) bucket append beats the O(log n) sift.  Tests force
    #: calendar mode by lowering this on an instance.
    CALENDAR_MIN_PENDING = 2048

    #: Bucket-width tuning: the initial width targets this many queued
    #: events per bucket, derived from the observed mean spacing of
    #: queued event times at upgrade.
    TARGET_OCCUPANCY = 8
    #: Drain-side occupancy feedback band: measured events-per-drained-
    #: bucket outside [lo, hi] triggers a power-of-two width retune.
    OCCUPANCY_LO = 2.0
    OCCUPANCY_HI = 64.0
    #: Executed events between occupancy evaluations.
    RETUNE_EVERY = 8192
    #: Retunes allowed before the distribution is declared degenerate and
    #: the queue falls back to the plain heap for the rest of the run.
    MAX_RETUNES = 8
    #: Buckets the calendar covers ahead of its earliest event; events
    #: landing past the horizon go to the overflow heap and migrate in as
    #: the calendar advances.  Buckets are a sparse dict, so an empty
    #: bucket costs nothing — the span is generous and overflow only
    #: catches genuinely far-future events (watchdog deadlines, timeout
    #: guards), keeping the bucket-index heap small even for those.
    CALENDAR_SPAN = 1 << 20
    #: Power-of-two bucket width bounds (2**exp cycles).
    MIN_WIDTH_EXP = -24
    MAX_WIDTH_EXP = 40

    def __init__(self) -> None:
        # Heap mode (the boot mode): plain (time, tiebreak, seq, event)
        # tuples under heapq — identical to the pre-calendar engine.
        self._heap: list[tuple[float, int, int, _ScheduledEvent]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._batched_events = 0
        self._running = False
        self._cancelled_in_heap = 0
        self._compactions = 0
        #: Entries currently stored (live + lazily-cancelled), all modes.
        self._size = 0
        # Calendar mode state.
        self._calendar = False
        self._calendar_banned = False
        self._buckets: dict[int, list] = {}
        self._bucket_heap: list[int] = []
        self._cur_list: Optional[list] = None
        self._cur_pos = 0
        self._cur_index = 0
        self._cur_seen = False
        self._overflow: list[tuple[float, int, int, _ScheduledEvent]] = []
        self._ovf_limit = 0
        self._width_exp = 0
        self._inv_width = 1.0
        self._retune_mark = 0
        self._buckets_window = 0
        self._retunes = 0
        self._fast_forwards = 0
        self._buckets_skipped = 0
        #: Optional progress observer (see :mod:`repro.resilience`): called
        #: as ``watcher(queue)`` after every executed event.  ``None`` (the
        #: default) keeps the hot loop branch-predictable and the simulated
        #: schedule untouched — watchers observe, they never inject events.
        #: Batched handlers (delivery coalescing, link drains) count as one
        #: executed event, so the watcher fires once per *dispatch*; the
        #: work they covered is visible through :attr:`events_simulated`.
        self.watcher: Optional[Callable[["EventQueue"], None]] = None
        #: Optional same-timestamp permutation hook (see
        #: :mod:`repro.sanitize.schedule`): called as ``tie_breaker(time,
        #: seq)`` at schedule time, and the returned rank is ordered
        #: *between* time and the FIFO sequence number.  ``None`` (the
        #: default) ranks every event 0, i.e. plain FIFO — the production
        #: schedule.  A correct simulation must produce bit-identical
        #: results under any tie-break permutation; the race detector
        #: installs seeded permutations here to prove it.
        self.tie_breaker: Optional[Callable[[float, int], int]] = None

    # -- introspection ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of event-queue dispatches executed so far."""
        return self._events_processed

    @property
    def batched_events(self) -> int:
        """Logical events folded into batched dispatches (see
        :meth:`credit_batched`)."""
        return self._batched_events

    @property
    def events_simulated(self) -> int:
        """Total logical events simulated: dispatches plus the per-flit /
        per-message events that batched handlers covered in bulk.  This is
        the throughput numerator profiling reports (events/sec) — it keeps
        the figure comparable across batched and unbatched engines, which
        simulate the same logical work in different numbers of dispatches.
        """
        return self._events_processed + self._batched_events

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still in the queue."""
        return self._size - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Raw stored population, including lazily-removed cancelled
        events, across heap, calendar buckets and overflow."""
        return self._size

    @property
    def compactions(self) -> int:
        """How many times the structures were compacted (dead entries
        purged)."""
        return self._compactions

    @property
    def calendar_active(self) -> bool:
        """Whether the queue is currently in calendar (bucketed) mode."""
        return self._calendar

    @property
    def bucket_width(self) -> float:
        """Current calendar bucket width in cycles (2**width_exp)."""
        return 2.0 ** self._width_exp

    @property
    def fast_forwards(self) -> int:
        """Idle gaps jumped: times the drain advanced past at least one
        empty bucket in a single index-heap pop."""
        return self._fast_forwards

    @property
    def buckets_skipped(self) -> int:
        """Total empty buckets jumped over by fast-forwards."""
        return self._buckets_skipped

    def credit_batched(self, count: int) -> None:
        """Record that the current dispatch covered ``count`` additional
        logical events (a batched handler standing in for ``count``
        singleton dispatches).  Feeds :attr:`events_simulated` only —
        ``events_processed``, watcher cadence and ``max_events`` keep
        counting real dispatches.
        """
        self._batched_events += count

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when drained.

        Peeking drops lazily-cancelled heads but executes nothing; the
        gap ``next_event_time() - now`` is what the calendar fast-forward
        jumps in one step.
        """
        event = self._peek_live()
        return event.time if event is not None else None

    def live_count(self) -> int:
        """Recount live (non-cancelled) entries in O(n).

        Ground truth for :attr:`pending`, which is maintained incrementally;
        the runtime sanitizer compares the two at quiescence (a drift means
        a cancellation was double-counted or lost).
        """
        return sum(1 for entry in self._entries() if not entry[3].cancelled)

    def _entries(self):
        """Iterate every stored entry tuple, across modes (O(n) audits)."""
        if not self._calendar:
            yield from self._heap
            return
        if self._cur_list is not None:
            yield from self._cur_list[self._cur_pos:]
        for bucket in self._buckets.values():
            yield from bucket
        yield from self._overflow

    # -- cancellation / compaction ---------------------------------------------

    def _note_cancel(self) -> None:
        self._cancelled_in_heap += 1
        if (self._cancelled_in_heap >= self.COMPACT_MIN_CANCELLED
                and self._cancelled_in_heap * 2 > self._size):
            self.compact()

    def compact(self) -> None:
        """Rebuild the structures without cancelled entries.

        Drain order is (time, tiebreak, seq); all three survive compaction
        unchanged, so the executed event sequence — and therefore the
        simulation — is byte-for-byte identical with or without
        compaction.

        In heap mode the heap list is mutated *in place* (slice
        assignment): a compaction triggered from inside an event callback
        must be visible to the running drain loop.  In calendar mode every
        bucket, the current bucket's unsorted remainder, and the overflow
        heap are filtered individually — positions survive because the
        current bucket is re-anchored at offset zero.
        """
        if self._cancelled_in_heap == 0:
            return
        if not self._calendar:
            self._heap[:] = [e for e in self._heap if not e[3].cancelled]
            heapq.heapify(self._heap)
            self._size = len(self._heap)
        else:
            size = 0
            if self._cur_list is not None:
                self._cur_list = [e for e in self._cur_list[self._cur_pos:]
                                  if not e[3].cancelled]
                self._cur_pos = 0
                size += len(self._cur_list)
            buckets = {}
            for idx, bucket in self._buckets.items():
                live = [e for e in bucket if not e[3].cancelled]
                if live:
                    buckets[idx] = live
                    size += len(live)
            self._buckets = buckets
            self._bucket_heap = list(buckets.keys())
            heapq.heapify(self._bucket_heap)
            self._overflow = [e for e in self._overflow if not e[3].cancelled]
            heapq.heapify(self._overflow)
            size += len(self._overflow)
            self._size = size
        self._cancelled_in_heap = 0
        self._compactions += 1

    # -- calendar management ---------------------------------------------------

    def _set_width(self, exp: int) -> None:
        self._width_exp = exp
        # Powers of two scale floats exactly, so int(time * inv_width) is
        # monotonic in time — the min occupied bucket always holds the min
        # event, whatever the width.
        self._inv_width = 2.0 ** -exp

    def _choose_width_exp(self, entries: list) -> int:
        """Initial width from the observed spacing of queued event times:
        span / population is the mean inter-event delta of everything
        queued right now; one bucket should hold ~TARGET_OCCUPANCY of
        them."""
        times = [e[0] for e in entries if not e[3].cancelled]
        if not times:
            return 0
        span = max(times) - self._now
        spacing = span / len(times)
        # Floor: the whole queued population must fit inside the
        # CALENDAR_SPAN horizon at upgrade, otherwise the overflow heap
        # would churn the bulk of the entries and the calendar would just
        # be a slower heap.
        width = max(spacing * self.TARGET_OCCUPANCY, span / self.CALENDAR_SPAN)
        if width <= 0.0:
            return self.MIN_WIDTH_EXP
        exp = math.frexp(width)[1]
        return max(self.MIN_WIDTH_EXP, min(self.MAX_WIDTH_EXP, exp))

    def _rebucket(self, entries: list) -> None:
        """Distribute ``entries`` over fresh buckets/overflow at the
        current width.  Bookkeeping counters are untouched: lazily
        cancelled entries are redistributed as-is."""
        self._buckets = {}
        self._bucket_heap = []
        self._overflow = []
        self._cur_list = None
        self._cur_pos = 0
        self._cur_seen = False
        inv = self._inv_width
        if not entries:
            self._ovf_limit = int(self._now * inv) + self.CALENDAR_SPAN
            return
        base = min(int(e[0] * inv) for e in entries)
        limit = base + self.CALENDAR_SPAN
        self._ovf_limit = limit
        buckets = self._buckets
        overflow = self._overflow
        for entry in entries:
            idx = int(entry[0] * inv)
            if idx >= limit:
                overflow.append(entry)
            else:
                bucket = buckets.get(idx)
                if bucket is None:
                    buckets[idx] = [entry]
                else:
                    bucket.append(entry)
        heapq.heapify(overflow)
        self._bucket_heap = list(buckets.keys())
        heapq.heapify(self._bucket_heap)

    def _enable_calendar(self) -> None:
        entries = self._heap
        self._heap = []
        self._calendar = True
        self._set_width(self._choose_width_exp(entries))
        self._retune_mark = self._events_processed
        self._buckets_window = 0
        self._rebucket(entries)

    def _disable_calendar(self, ban: bool) -> None:
        entries = list(self._entries())
        self._calendar = False
        if ban:
            self._calendar_banned = True
        self._buckets = {}
        self._bucket_heap = []
        self._cur_list = None
        self._cur_pos = 0
        self._cur_seen = False
        self._overflow = []
        self._heap = entries
        heapq.heapify(self._heap)

    def _maybe_retune(self) -> None:
        """Occupancy feedback: widen/narrow the bucket width by 4x when
        drained buckets run emptier/fuller than the band allows; ban the
        calendar for this run when retuning cannot fix it (degenerate
        distribution)."""
        pops = self._events_processed - self._retune_mark
        drained = self._buckets_window
        self._retune_mark = self._events_processed
        self._buckets_window = 0
        if drained == 0:
            return
        occupancy = pops / drained
        if self.OCCUPANCY_LO <= occupancy <= self.OCCUPANCY_HI:
            return
        self._retunes += 1
        step = 2 if occupancy < self.OCCUPANCY_LO else -2
        exp = self._width_exp + step
        if self._retunes > self.MAX_RETUNES or not (
                self.MIN_WIDTH_EXP <= exp <= self.MAX_WIDTH_EXP):
            self._disable_calendar(ban=True)
            return
        self._set_width(exp)
        self._rebucket(list(self._entries()))

    def _park_current(self) -> None:
        """Return the current bucket's unsorted remainder to the dict:
        a bucket with a smaller index appeared (run(until=...) left
        ``now`` below the bucket's start, then something scheduled into
        the gap)."""
        remainder = self._cur_list[self._cur_pos:]
        self._cur_list = None
        self._cur_pos = 0
        if remainder:
            self._buckets[self._cur_index] = remainder
            heapq.heappush(self._bucket_heap, self._cur_index)

    def _migrate_overflow(self) -> None:
        """Pull far-future entries into buckets now that the calendar has
        drained up to the overflow horizon."""
        overflow = self._overflow
        inv = self._inv_width
        limit = int(overflow[0][0] * inv) + self.CALENDAR_SPAN
        self._ovf_limit = limit
        buckets = self._buckets
        bucket_heap = self._bucket_heap
        # One linear partition beats heappop-per-entry: a migration moves
        # a whole span's worth of entries at once and happens only when
        # the calendar has fully drained up to the horizon.
        keep = []
        for entry in overflow:
            idx = int(entry[0] * inv)
            if idx >= limit:
                keep.append(entry)
                continue
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [entry]
                heapq.heappush(bucket_heap, idx)
            else:
                bucket.append(entry)
        heapq.heapify(keep)
        self._overflow = keep

    def _next_bucket(self) -> bool:
        """Advance the drain target to the next occupied bucket.

        This is the idle-gap fast-forward: the index min-heap jumps
        straight to the next occupied bucket, so a quiescent stretch of
        simulated time costs one heap pop no matter how many empty
        buckets it spans.  Nothing is skipped — fault-schedule flips,
        watchdog deadlines and checkpoint timers are scheduled events
        sitting in buckets of their own, and watchers fire per executed
        event exactly as before (the gap boundaries).
        """
        bucket_heap = self._bucket_heap
        while True:
            if bucket_heap:
                if self._events_processed - self._retune_mark >= self.RETUNE_EVERY:
                    self._maybe_retune()
                    if not self._calendar:
                        return False
                    bucket_heap = self._bucket_heap
                    if not bucket_heap:
                        continue
                idx = heapq.heappop(bucket_heap)
                bucket = self._buckets.pop(idx, None)
                if bucket is None:  # pragma: no cover - defensive
                    continue
                if self._cur_seen and idx > self._cur_index + 1:
                    self._fast_forwards += 1
                    self._buckets_skipped += idx - self._cur_index - 1
                bucket.sort()
                self._cur_list = bucket
                self._cur_pos = 0
                self._cur_index = idx
                self._cur_seen = True
                self._buckets_window += 1
                return True
            if self._overflow:
                self._migrate_overflow()
                continue
            return False

    # -- scheduling ------------------------------------------------------------

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to fire at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        seq = next(self._seq)
        tie_breaker = self.tie_breaker
        tiebreak = 0 if tie_breaker is None else tie_breaker(time, seq)
        event = _ScheduledEvent(time=time, tiebreak=tiebreak, seq=seq,
                                callback=callback)
        entry = (time, tiebreak, seq, event)
        self._size += 1
        if not self._calendar:
            # Upgrading to the calendar is a *drain-side* decision (see
            # _peek_live): deferring it past a burst of scheduling means
            # the bucket width is chosen with the whole population
            # visible, not the first few thousand entries.
            heapq.heappush(self._heap, entry)
        else:
            idx = int(time * self._inv_width)
            if idx >= self._ovf_limit:
                heapq.heappush(self._overflow, entry)
            elif self._cur_list is not None and idx == self._cur_index:
                # Into the bucket being drained: keep the undrained suffix
                # sorted (events already executed live before _cur_pos and
                # must not move).
                insort(self._cur_list, entry, self._cur_pos)
            else:
                bucket = self._buckets.get(idx)
                if bucket is None:
                    self._buckets[idx] = [entry]
                    heapq.heappush(self._bucket_heap, idx)
                else:
                    bucket.append(entry)
        return EventHandle(event, self)

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    # -- draining --------------------------------------------------------------

    def _peek_live(self) -> Optional[_ScheduledEvent]:
        """The next live event, dropping cancelled heads along the way.

        The *only* place cancelled entries leave the structures outside
        :meth:`compact` — :meth:`step` and :meth:`run` both pop through
        here, so the ``pending``/compaction bookkeeping cannot drift
        between the two drain paths.  The returned event is left queued
        (callers commit via :meth:`_pop_live` or the inlined run loop).
        """
        if not self._calendar:
            if (not self._calendar_banned
                    and self._size - self._cancelled_in_heap
                    >= self.CALENDAR_MIN_PENDING):
                self._enable_calendar()
                return self._peek_live()
            heap = self._heap
            pop = heapq.heappop
            dropped = 0
            while heap:
                head = heap[0][3]
                if not head.cancelled:
                    if dropped:
                        self._cancelled_in_heap -= dropped
                        self._size -= dropped
                    return head
                pop(heap)
                dropped += 1
            if dropped:
                self._cancelled_in_heap -= dropped
                self._size -= dropped
            return None
        while True:
            lst = self._cur_list
            if lst is not None:
                bucket_heap = self._bucket_heap
                if bucket_heap and bucket_heap[0] < self._cur_index:
                    self._park_current()
                    continue
                pos = self._cur_pos
                n = len(lst)
                while pos < n:
                    event = lst[pos][3]
                    if not event.cancelled:
                        self._cur_pos = pos
                        return event
                    pos += 1
                    self._cancelled_in_heap -= 1
                    self._size -= 1
                self._cur_pos = pos
                self._cur_list = None
                continue
            if not self._next_bucket():
                if not self._calendar:
                    # A retune mid-advance declared the distribution
                    # degenerate and fell back to the heap.
                    return self._peek_live()
                return None

    def _pop_live(self) -> Optional[_ScheduledEvent]:
        """Commit and return the next live event (peek + pop in one)."""
        event = self._peek_live()
        if event is None:
            return None
        if not self._calendar:
            heapq.heappop(self._heap)
        else:
            self._cur_pos += 1
        self._size -= 1
        return event

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (or contained only cancelled events).

        Events scheduled *at* the current time from within a handler are
        pushed with a fresh FIFO sequence number and therefore execute in
        the same drain pass, after everything already scheduled for that
        timestamp — a fault-schedule flip (e.g. ``link_down``) racing an
        in-flight send at the same cycle resolves in schedule order,
        deterministically.
        """
        event = self._pop_live()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.fired = True
        event.callback()
        if self.watcher is not None:
            self.watcher(self)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an inclusive horizon: events at exactly ``until`` fire,
        including events a handler schedules at ``until`` while it runs.
        ``max_events`` guards against runaway simulations (it counts
        dispatches, not batched logical events).
        """
        if self._running:
            raise SimulationError("EventQueue.run() is not re-entrant")
        self._running = True
        executed = 0
        peek_live = self._peek_live
        try:
            if type(self).step is not EventQueue.step:
                # A subclass instrumented the per-event path (e.g. the
                # runtime sanitizer's time-travel/livelock checks); route
                # every execution through its step() override instead of
                # the inlined fast loop below.
                step = self.step
                while True:
                    head = peek_live()
                    if head is None:
                        return
                    if until is not None and head.time > until:
                        self._now = max(self._now, until)
                        return
                    if max_events is not None and executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (possible livelock)"
                        )
                    step()
                    executed += 1
            # Hot loop.  The mode flag is re-dispatched every bucket (and
            # every event in heap mode) because a callback's schedule_at
            # can upgrade heap -> calendar (and a retune can fall back)
            # mid-run.  In calendar mode the current bucket is drained
            # inline — one _peek_live call per *bucket*, not per event;
            # the only mid-bucket hazards are cancellation (the flag
            # check), same-bucket scheduling (in-place insort: re-read
            # len) and compaction/retune (both replace the list object:
            # the identity check drops back to the dispatcher).
            heappop = heapq.heappop
            while True:
                if not self._calendar:
                    head = peek_live()
                    if head is None:
                        return
                    if self._calendar:
                        continue
                    t = head.time
                    if until is not None and t > until:
                        # Never rewind: run(until=past) must not move time
                        # back.
                        self._now = max(self._now, until)
                        return
                    if max_events is not None and executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (possible livelock)"
                        )
                    heappop(self._heap)
                    self._size -= 1
                    self._now = t
                    self._events_processed += 1
                    head.fired = True
                    head.callback()
                    watcher = self.watcher
                    if watcher is not None:
                        watcher(self)
                    executed += 1
                    continue
                lst = self._cur_list
                if lst is None or (self._bucket_heap
                                   and self._bucket_heap[0] < self._cur_index):
                    if peek_live() is None:
                        return
                    continue
                pos = self._cur_pos
                n = len(lst)
                while pos < n:
                    entry = lst[pos]
                    head = entry[3]
                    if head.cancelled:
                        pos += 1
                        self._cancelled_in_heap -= 1
                        self._size -= 1
                        continue
                    t = entry[0]
                    if until is not None and t > until:
                        self._cur_pos = pos
                        self._now = max(self._now, until)
                        return
                    if max_events is not None and executed >= max_events:
                        self._cur_pos = pos
                        raise SimulationError(
                            f"exceeded max_events={max_events} (possible livelock)"
                        )
                    pos += 1
                    self._cur_pos = pos
                    self._size -= 1
                    self._now = t
                    self._events_processed += 1
                    head.fired = True
                    head.callback()
                    watcher = self.watcher
                    if watcher is not None:
                        watcher(self)
                    executed += 1
                    if self._cur_list is not lst:
                        break
                    pos = self._cur_pos
                    n = len(lst)
                else:
                    self._cur_pos = pos
                    self._cur_list = None
        finally:
            self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Also restarts the FIFO sequence counter and the calendar tuning
        state so a reset queue schedules events with the same tie-break
        order — and the same bucket layout trajectory — as a fresh one:
        identical runs on a reused queue stay bit-identical (cross-run
        determinism).
        """
        self._heap.clear()
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._batched_events = 0
        self._cancelled_in_heap = 0
        self._compactions = 0
        self._size = 0
        self._calendar = False
        self._calendar_banned = False
        self._buckets = {}
        self._bucket_heap = []
        self._cur_list = None
        self._cur_pos = 0
        self._cur_index = 0
        self._cur_seen = False
        self._overflow = []
        self._ovf_limit = 0
        self._set_width(0)
        self._retune_mark = 0
        self._buckets_window = 0
        self._retunes = 0
        self._fast_forwards = 0
        self._buckets_skipped = 0


class Timeline:
    """A tiny convenience wrapper pairing an :class:`EventQueue` with helpers
    commonly needed by simulation components (barriers, deferred calls).
    """

    def __init__(self, queue: Optional[EventQueue] = None):
        self.queue = queue if queue is not None else EventQueue()

    @property
    def now(self) -> float:
        return self.queue.now

    def after(self, delay: float, callback: EventCallback) -> EventHandle:
        return self.queue.schedule(delay, callback)

    def call_soon(self, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at the current time (after in-flight events)."""
        return self.queue.schedule(0.0, callback)


class CountdownBarrier:
    """Fires ``on_done`` once :meth:`arrive` has been called ``count`` times.

    Used by collective state machines to wait for N concurrent completions
    (e.g. the N-1 simultaneous receives of a direct alltoall step).

    When a runtime sanitizer is supplied (see
    :class:`repro.sanitize.runtime.RuntimeSanitizer`), the barrier
    registers with its barrier checker: over-arrival is reported with the
    barrier's name and expected count, and barriers still unfired at
    quiescence are surfaced as under-arrivals.  The sanitizer is passed
    duck-typed so the event engine stays import-free of the sanitizer.
    """

    def __init__(self, count: int, on_done: EventCallback,
                 name: str = "", sanitizer: Any = None):
        if count < 0:
            raise SimulationError(f"barrier count must be >= 0, got {count}")
        self.name = name
        self.count = count
        self._remaining = count
        self._on_done = on_done
        self._fired = False
        self._sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.barriers.register(self)
        if count == 0:
            self._fire()

    @property
    def remaining(self) -> int:
        return self._remaining

    @property
    def done(self) -> bool:
        return self._fired

    def arrive(self, _result: Any = None) -> None:
        if self._fired:
            if self._sanitizer is not None:
                self._sanitizer.barriers.over_arrival(self)
            raise SimulationError(
                f"arrive() after barrier {self.name or 'anonymous'} "
                f"(count={self.count}) already fired"
            )
        self._remaining -= 1
        if self._remaining == 0:
            self._fire()
        elif self._remaining < 0:  # pragma: no cover - guarded above
            raise SimulationError("barrier over-arrived")

    def _fire(self) -> None:
        self._fired = True
        if self._sanitizer is not None:
            self._sanitizer.barriers.fired(self)
        self._on_done()
