"""Discrete-event simulation engine.

ASTRA-SIM uses an event-driven execution model with a single event queue
implemented in the system layer and exposed upwards to the workload layer
(Sec. IV of the paper).  This module provides that queue: a classic
calendar built on a binary heap, with stable FIFO ordering for events
scheduled at the same timestamp.

Time is kept in floating-point *cycles*.  The mapping between cycles and
wall-clock seconds is owned by the configuration layer (``ClockConfig``),
not by the engine.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import SimulationError

EventCallback = Callable[[], None]


@dataclass(slots=True)
class _ScheduledEvent:
    """Mutable per-event state (cancellation, fired flag).

    The heap itself stores plain ``(time, tiebreak, seq, event)`` tuples —
    heapq then compares entries entirely in C (the ``seq`` field is unique,
    so the event object in slot 3 is never reached by a comparison), which
    is the engine's single hottest code path.  The ordering semantics:
    events scheduled for the same time fire in the order they were
    scheduled (deterministic FIFO tie-break); ``tiebreak`` is 0 unless a
    :attr:`EventQueue.tie_breaker` hook is installed, in which case it
    permutes the drain order of same-timestamp events (the
    schedule-perturbation race detector, :mod:`repro.sanitize.schedule`).
    ``slots=True``: millions of these live in the heap of a long run, and
    the hot loop touches ``.time``/``.cancelled`` on every pop.
    """

    time: float
    tiebreak: int
    seq: int
    callback: EventCallback
    cancelled: bool = False
    fired: bool = False


class EventHandle:
    """Handle returned by :meth:`EventQueue.schedule`; allows cancellation."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: _ScheduledEvent, queue: "EventQueue"):
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """The simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def fired(self) -> bool:
        """Whether the event has already executed."""
        return self._event.fired

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; lazy removal.

        Cancelling an event that already fired is a no-op: the event is no
        longer in the heap, so counting it as cancelled-in-heap would skew
        :attr:`EventQueue.pending` permanently (the transport layer cancels
        delivery timers that may have just fired).
        """
        if not self._event.cancelled and not self._event.fired:
            self._event.cancelled = True
            self._queue._note_cancel()


class EventQueue:
    """A deterministic discrete-event queue.

    >>> q = EventQueue()
    >>> fired = []
    >>> _ = q.schedule_at(5.0, lambda: fired.append("a"))
    >>> _ = q.schedule_at(2.0, lambda: fired.append("b"))
    >>> q.run()
    >>> fired
    ['b', 'a']
    """

    #: Lazy-removal compaction: once at least this many cancelled entries
    #: sit in the heap *and* they outnumber the live ones, the heap is
    #: rebuilt without them.  Long fuzz runs under the reliable transport
    #: cancel one delivery timer per message and would otherwise grow the
    #: heap without bound.
    COMPACT_MIN_CANCELLED = 1024

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, _ScheduledEvent]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        self._cancelled_in_heap = 0
        self._compactions = 0
        #: Optional progress observer (see :mod:`repro.resilience`): called
        #: as ``watcher(queue)`` after every executed event.  ``None`` (the
        #: default) keeps the hot loop branch-predictable and the simulated
        #: schedule untouched — watchers observe, they never inject events.
        self.watcher: Optional[Callable[["EventQueue"], None]] = None
        #: Optional same-timestamp permutation hook (see
        #: :mod:`repro.sanitize.schedule`): called as ``tie_breaker(time,
        #: seq)`` at schedule time, and the returned rank is ordered
        #: *between* time and the FIFO sequence number.  ``None`` (the
        #: default) ranks every event 0, i.e. plain FIFO — the production
        #: schedule.  A correct simulation must produce bit-identical
        #: results under any tie-break permutation; the race detector
        #: installs seeded permutations here to prove it.
        self.tie_breaker: Optional[Callable[[float, int], int]] = None

    @property
    def now(self) -> float:
        """Current simulated time in cycles."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* (non-cancelled) events still in the queue."""
        return len(self._heap) - self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Raw heap population, including lazily-removed cancelled events."""
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """How many times the heap was compacted (dead entries purged)."""
        return self._compactions

    def live_count(self) -> int:
        """Recount live (non-cancelled) heap entries in O(n).

        Ground truth for :attr:`pending`, which is maintained incrementally;
        the runtime sanitizer compares the two at quiescence (a drift means
        a cancellation was double-counted or lost).
        """
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    def _note_cancel(self) -> None:
        self._cancelled_in_heap += 1
        if (self._cancelled_in_heap >= self.COMPACT_MIN_CANCELLED
                and self._cancelled_in_heap * 2 > len(self._heap)):
            self.compact()

    def compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Heap order is (time, tiebreak, seq); all three survive compaction
        unchanged, so the executed event sequence — and therefore the
        simulation — is byte-for-byte identical with or without
        compaction.

        Compaction mutates the heap list *in place* (slice assignment):
        :meth:`run` hoists a reference to the list for the hot loop, and
        a compaction triggered from inside an event callback must be
        visible through that reference.
        """
        if self._cancelled_in_heap == 0:
            return
        self._heap[:] = [entry for entry in self._heap if not entry[3].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def _peek_live(self) -> Optional[_ScheduledEvent]:
        """The next live event, dropping cancelled heads along the way.

        The *only* place cancelled entries leave the heap outside
        :meth:`compact` — :meth:`step` and :meth:`run` both pop through
        here, so the ``pending``/compaction bookkeeping cannot drift
        between the two drain paths.  The returned event is left on the
        heap (callers pop it when they commit to executing it).
        """
        heap = self._heap
        pop = heapq.heappop
        dropped = 0
        while heap:
            head = heap[0][3]
            if not head.cancelled:
                if dropped:
                    self._cancelled_in_heap -= dropped
                return head
            pop(heap)
            dropped += 1
        if dropped:
            self._cancelled_in_heap -= dropped
        return None

    def schedule_at(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to fire at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        seq = next(self._seq)
        tie_breaker = self.tie_breaker
        tiebreak = 0 if tie_breaker is None else tie_breaker(time, seq)
        event = _ScheduledEvent(time=time, tiebreak=tiebreak, seq=seq,
                                callback=callback)
        heapq.heappush(self._heap, (time, tiebreak, seq, event))
        return EventHandle(event, self)

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback)

    def step(self) -> bool:
        """Execute the single next non-cancelled event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (or contained only cancelled events).

        Events scheduled *at* the current time from within a handler are
        pushed with a fresh FIFO sequence number and therefore execute in
        the same drain pass, after everything already scheduled for that
        timestamp — a fault-schedule flip (e.g. ``link_down``) racing an
        in-flight send at the same cycle resolves in schedule order,
        deterministically.
        """
        event = self._peek_live()
        if event is None:
            return False
        heapq.heappop(self._heap)
        self._now = event.time
        self._events_processed += 1
        event.fired = True
        event.callback()
        if self.watcher is not None:
            self.watcher(self)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        ``until`` is an inclusive horizon: events at exactly ``until`` fire,
        including events a handler schedules at ``until`` while it runs.
        ``max_events`` guards against runaway simulations.
        """
        if self._running:
            raise SimulationError("EventQueue.run() is not re-entrant")
        self._running = True
        executed = 0
        # Hot loop: hoist everything invariant out of the per-event path.
        # ``heap`` stays valid across callbacks because compact() mutates
        # the list in place, and schedule_at() pushes into the same list.
        heap = self._heap
        pop = heapq.heappop
        peek_live = self._peek_live
        try:
            if type(self).step is not EventQueue.step:
                # A subclass instrumented the per-event path (e.g. the
                # runtime sanitizer's time-travel/livelock checks); route
                # every execution through its step() override instead of
                # the inlined fast loop below.
                step = self.step
                while True:
                    head = peek_live()
                    if head is None:
                        return
                    if until is not None and head.time > until:
                        self._now = max(self._now, until)
                        return
                    if max_events is not None and executed >= max_events:
                        raise SimulationError(
                            f"exceeded max_events={max_events} (possible livelock)"
                        )
                    step()
                    executed += 1
            while True:
                head = peek_live()
                if head is None:
                    return
                if until is not None and head.time > until:
                    # Never rewind: run(until=past) must not move time back.
                    self._now = max(self._now, until)
                    return
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (possible livelock)"
                    )
                pop(heap)
                self._now = head.time
                self._events_processed += 1
                head.fired = True
                head.callback()
                watcher = self.watcher
                if watcher is not None:
                    watcher(self)
                executed += 1
        finally:
            self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Also restarts the FIFO sequence counter so a reset queue schedules
        events with the same tie-break order as a fresh one — identical
        runs on a reused queue stay bit-identical (cross-run determinism).
        """
        self._heap.clear()
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._compactions = 0


class Timeline:
    """A tiny convenience wrapper pairing an :class:`EventQueue` with helpers
    commonly needed by simulation components (barriers, deferred calls).
    """

    def __init__(self, queue: Optional[EventQueue] = None):
        self.queue = queue if queue is not None else EventQueue()

    @property
    def now(self) -> float:
        return self.queue.now

    def after(self, delay: float, callback: EventCallback) -> EventHandle:
        return self.queue.schedule(delay, callback)

    def call_soon(self, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at the current time (after in-flight events)."""
        return self.queue.schedule(0.0, callback)


class CountdownBarrier:
    """Fires ``on_done`` once :meth:`arrive` has been called ``count`` times.

    Used by collective state machines to wait for N concurrent completions
    (e.g. the N-1 simultaneous receives of a direct alltoall step).

    When a runtime sanitizer is supplied (see
    :class:`repro.sanitize.runtime.RuntimeSanitizer`), the barrier
    registers with its barrier checker: over-arrival is reported with the
    barrier's name and expected count, and barriers still unfired at
    quiescence are surfaced as under-arrivals.  The sanitizer is passed
    duck-typed so the event engine stays import-free of the sanitizer.
    """

    def __init__(self, count: int, on_done: EventCallback,
                 name: str = "", sanitizer: Any = None):
        if count < 0:
            raise SimulationError(f"barrier count must be >= 0, got {count}")
        self.name = name
        self.count = count
        self._remaining = count
        self._on_done = on_done
        self._fired = False
        self._sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.barriers.register(self)
        if count == 0:
            self._fire()

    @property
    def remaining(self) -> int:
        return self._remaining

    @property
    def done(self) -> bool:
        return self._fired

    def arrive(self, _result: Any = None) -> None:
        if self._fired:
            if self._sanitizer is not None:
                self._sanitizer.barriers.over_arrival(self)
            raise SimulationError(
                f"arrive() after barrier {self.name or 'anonymous'} "
                f"(count={self.count}) already fired"
            )
        self._remaining -= 1
        if self._remaining == 0:
            self._fire()
        elif self._remaining < 0:  # pragma: no cover - guarded above
            raise SimulationError("barrier over-arrived")

    def _fire(self) -> None:
        self._fired = True
        if self._sanitizer is not None:
            self._sanitizer.barriers.fired(self)
        self._on_done()
