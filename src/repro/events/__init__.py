"""Discrete-event simulation engine (the paper's event-driven execution model)."""

from repro.events.engine import (
    CountdownBarrier,
    EventCallback,
    EventHandle,
    EventQueue,
    Timeline,
)

__all__ = [
    "CountdownBarrier",
    "EventCallback",
    "EventHandle",
    "EventQueue",
    "Timeline",
]
