"""The resilience monitor: one queue watcher driving checkpoints, the
stall watchdog, and resume verification.

The event queue exposes a single :attr:`~repro.events.engine.EventQueue.watcher`
slot; :class:`ResilienceMonitor` is the composite installed there by
:class:`repro.system.sys_layer.System` when a :class:`ResilienceConfig`
is supplied.  Per executed event it (in order):

1. verifies a resume checkpoint the moment the replay reaches its
   ``events_processed`` mark (see :mod:`repro.resilience.checkpoint`),
2. feeds the watchdog's progress sampler,
3. takes a periodic checkpoint when the simulated clock crosses the next
   cadence boundary (or when :meth:`request_checkpoint` was called, e.g.
   from a signal handler).

None of these schedule events, so the simulated trajectory is identical
with the monitor on or off.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import CheckpointError
from repro.resilience.checkpoint import Checkpoint, CheckpointConfig, platform_digest
from repro.resilience.watchdog import Watchdog, WatchdogConfig

#: Live monitors, for the out-of-band checkpoint signal (see
#: :func:`install_signal_handler`).
_LIVE_MONITORS: "weakref.WeakSet" = weakref.WeakSet()


def _on_checkpoint_signal(signum, frame) -> None:  # pragma: no cover - signal
    for monitor in list(_LIVE_MONITORS):
        monitor.request_checkpoint()


def install_signal_handler() -> bool:
    """Checkpoint-on-signal: ``SIGUSR1`` flags every live monitor to
    snapshot at its next executed event (only a flag is set in the
    handler, so this is async-signal-safe).  Returns ``False`` on
    platforms without ``SIGUSR1``."""
    import signal

    if not hasattr(signal, "SIGUSR1"):
        return False
    signal.signal(signal.SIGUSR1, _on_checkpoint_signal)
    return True


@dataclass
class ResilienceConfig:
    """What resilience machinery to attach to a system."""

    #: Periodic checkpointing; ``None`` disables.
    checkpoint: Optional[CheckpointConfig] = None
    #: Stall detection; ``None`` disables.
    watchdog: Optional[WatchdogConfig] = None
    #: A checkpoint (or a path to one) this run must replay through and
    #: verify against; ``None`` for a fresh run.
    resume_from: Optional[Union[Checkpoint, str]] = None
    #: Label recorded in captured checkpoints (platform name).
    label: str = ""

    @property
    def enabled(self) -> bool:
        return (self.checkpoint is not None or self.watchdog is not None
                or self.resume_from is not None)


class ResilienceMonitor:
    """Composite queue watcher (see the module docstring)."""

    def __init__(self, system, config: ResilienceConfig):
        self.system = system
        self.config = config
        _LIVE_MONITORS.add(self)
        self._cfg_digest = platform_digest(system)
        self.watchdog: Optional[Watchdog] = None
        if config.watchdog is not None:
            self.watchdog = Watchdog(system, config.watchdog)

        self._next_due: Optional[float] = None
        if config.checkpoint is not None:
            self._next_due = config.checkpoint.every_cycles
        self._checkpoint_requested = False
        #: Checkpoints captured this run, in capture order.
        self.checkpoints: list[Checkpoint] = []
        #: Paths the captured checkpoints were saved to.
        self.saved_paths: list[str] = []

        self.resume_checkpoint: Optional[Checkpoint] = None
        self.resume_verified = False
        if config.resume_from is not None:
            ckpt = config.resume_from
            if isinstance(ckpt, str):
                ckpt = Checkpoint.load(ckpt)
            if ckpt.config_digest and ckpt.config_digest != self._cfg_digest:
                raise CheckpointError(
                    f"checkpoint was captured on config "
                    f"{ckpt.config_digest}, this platform is "
                    f"{self._cfg_digest}; resume refused (the replay could "
                    f"not be cycle-identical)"
                )
            if self.system.events.events_processed > ckpt.events_processed:
                raise CheckpointError(
                    "resume checkpoint lies in this run's past; attach the "
                    "monitor before running"
                )
            self.resume_checkpoint = ckpt
            if self.system.events.events_processed == ckpt.events_processed:
                # Degenerate checkpoint captured before any event fired.
                ckpt.verify(self.system, label=self.config.label)
                self.resume_verified = True

    # -- the watcher entry point ---------------------------------------------------

    def on_event(self, queue) -> None:
        if (self.resume_checkpoint is not None and not self.resume_verified
                and queue.events_processed
                >= self.resume_checkpoint.events_processed):
            # Exact hit: the watcher sees every events_processed value.
            self.resume_checkpoint.verify(self.system, label=self.config.label)
            self.resume_verified = True
        if self.watchdog is not None:
            self.watchdog.note_event()
        if self._checkpoint_requested:
            self._checkpoint_requested = False
            self.take_checkpoint()
        if self._next_due is not None and queue.now >= self._next_due:
            every = self.config.checkpoint.every_cycles
            while self._next_due <= queue.now:
                self._next_due += every
            self.take_checkpoint()

    # -- checkpointing ---------------------------------------------------------------

    def request_checkpoint(self) -> None:
        """Ask for a checkpoint at the next executed event.

        Async-signal-safe (sets a flag); the CLI wires this to ``SIGUSR1``
        so a long run can be snapshotted from outside without stopping it.
        """
        self._checkpoint_requested = True

    def take_checkpoint(self) -> Checkpoint:
        """Capture (and, with a checkpoint config, save) a checkpoint now."""
        ckpt = Checkpoint.capture(self.system, label=self.config.label,
                                  cfg_digest=self._cfg_digest)
        self.checkpoints.append(ckpt)
        cfg = self.config.checkpoint
        if cfg is not None:
            path = os.path.join(cfg.directory, ckpt.filename(cfg.prefix))
            self.saved_paths.append(ckpt.save(path))
        return ckpt

    # -- end of run ------------------------------------------------------------------

    def finalize(self) -> None:
        """Called by ``run_until_idle`` after the queue drains.

        A resume checkpoint the replay never reached means the
        interrupted run had executed more events than this one ever will
        — the platform or workload differs, and the "resumed" numbers
        would be from a different trajectory.
        """
        if self.resume_checkpoint is not None and not self.resume_verified:
            raise CheckpointError(
                f"run drained after "
                f"{self.system.events.events_processed} events without "
                f"reaching the resume checkpoint's "
                f"{self.resume_checkpoint.events_processed}; the replay "
                f"does not match the checkpointed run"
            )
