"""Resilience tooling for long faulty runs (docs/RESILIENCE.md).

Three cooperating pieces:

* :mod:`repro.resilience.checkpoint` — versioned snapshots of simulator
  progress, with verified deterministic resume.
* :mod:`repro.resilience.watchdog` — stall detection on the event queue
  with diagnostic bundles.
* :mod:`repro.resilience.chaos` — the ``astra-repro chaos`` fuzzing
  harness: randomized fault schedules and transport configs, every run
  classified, silent hangs forbidden.

All of it hangs off the :attr:`repro.events.engine.EventQueue.watcher`
observer hook, which fires after each executed event and never schedules
events itself — so enabling checkpoints or the watchdog cannot change a
single simulated cycle (asserted by
``benchmarks/bench_resilience_overhead.py``).
"""

from repro.resilience.chaos import (
    ChaosConfig,
    ChaosReport,
    ChaosRun,
    Outcome,
    run_chaos,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointConfig,
    config_digest,
    platform_digest,
)
from repro.resilience.monitor import ResilienceConfig, ResilienceMonitor
from repro.resilience.watchdog import StallDiagnostics, Watchdog, WatchdogConfig

__all__ = [
    "CHECKPOINT_VERSION",
    "ChaosConfig",
    "ChaosReport",
    "ChaosRun",
    "Checkpoint",
    "CheckpointConfig",
    "Outcome",
    "ResilienceConfig",
    "ResilienceMonitor",
    "StallDiagnostics",
    "Watchdog",
    "WatchdogConfig",
    "config_digest",
    "platform_digest",
    "run_chaos",
]
