"""Stall watchdog: no-progress detection on a live event queue.

A drain deadlock (empty queue, unfinished collectives) is already caught
by :meth:`System.run_until_idle`.  The failure mode this module targets is
nastier: the queue keeps firing events — retry timers, backoff timers —
but nothing *real* ever happens, because every retransmission lands on a
permanently-down path or a never-resuming node.  Without a watchdog such
a run burns wall-clock until ``max_events`` trips with a generic livelock
error, or forever.

The :class:`Watchdog` observes the queue through the
:attr:`~repro.events.engine.EventQueue.watcher` hook.  Every
``check_every_events`` executed events it samples the system's *progress
vector* (deliveries, chunk completions, finished sets — see
:meth:`repro.system.sys_layer.System.progress_vector`).  If the vector
has not changed for ``stall_cycles`` of simulated time while events kept
firing, the run is stalled: the watchdog assembles a
:class:`StallDiagnostics` bundle (wait-for summary, per-chunk stuck
phases, the live fault set, transport stats), optionally writes it to
disk and/or captures a checkpoint, and aborts with
:class:`~repro.errors.StallError`.

Pure-compute gaps do not false-positive: during a long compute phase no
events fire, so no checks run; the first check after the gap sees the
deliveries the resumed communication produced.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ConfigError, StallError


@dataclass
class WatchdogConfig:
    """Stall-detection thresholds and what to do on a trip."""

    #: Simulated cycles without progress before declaring a stall.
    stall_cycles: float = 2_000_000.0
    #: Sample the progress vector every this many executed events.
    check_every_events: int = 2048
    #: ``"abort"`` raises :class:`StallError`; ``"checkpoint"`` also
    #: captures a checkpoint into ``bundle_dir`` before raising.
    action: str = "abort"
    #: Where diagnostic bundles (and action="checkpoint" snapshots) land;
    #: ``None`` keeps the diagnostics in the raised error only.
    bundle_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.stall_cycles <= 0:
            raise ConfigError(
                f"watchdog stall_cycles must be positive, got {self.stall_cycles}")
        if self.check_every_events <= 0:
            raise ConfigError(
                f"watchdog check_every_events must be positive, got "
                f"{self.check_every_events}")
        if self.action not in ("abort", "checkpoint"):
            raise ConfigError(
                f"watchdog action must be 'abort' or 'checkpoint', got "
                f"{self.action!r}")
        if self.action == "checkpoint" and self.bundle_dir is None:
            raise ConfigError(
                "watchdog action 'checkpoint' needs a bundle_dir to write "
                "the snapshot into")


@dataclass
class StallDiagnostics:
    """Everything a human needs to diagnose a tripped watchdog."""

    time: float
    events_processed: int
    stalled_for_cycles: float
    progress_vector: tuple
    wait_for: str
    diagnostics: dict[str, Any] = field(default_factory=dict)
    bundle_path: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "events_processed": self.events_processed,
            "stalled_for_cycles": self.stalled_for_cycles,
            "progress_vector": list(self.progress_vector),
            "wait_for": self.wait_for,
            "diagnostics": self.diagnostics,
        }

    def summary(self) -> str:
        lines = [
            f"no progress for {self.stalled_for_cycles:,.0f} cycles at "
            f"t={self.time:,.0f} ({self.events_processed} events executed)",
            self.wait_for,
        ]
        if self.bundle_path:
            lines.append(f"diagnostic bundle: {self.bundle_path}")
        return "\n".join(lines)


class Watchdog:
    """Progress monitor for one :class:`~repro.system.sys_layer.System`."""

    def __init__(self, system, config: Optional[WatchdogConfig] = None):
        self.system = system
        self.config = config if config is not None else WatchdogConfig()
        self._events_at_last_check = system.events.events_processed
        self._last_vector: Optional[tuple] = None
        self._last_progress_time = system.now
        #: The diagnostics of the trip, kept for post-mortem inspection
        #: (the chaos harness reads it after catching the StallError).
        self.tripped: Optional[StallDiagnostics] = None

    # -- the watcher-side entry point --------------------------------------------

    def note_event(self) -> None:
        """Called after every executed event (via the queue watcher)."""
        events = self.system.events.events_processed
        if events - self._events_at_last_check < self.config.check_every_events:
            return
        self._events_at_last_check = events
        self._check()

    def _check(self) -> None:
        vector = self.system.progress_vector()
        now = self.system.now
        if vector != self._last_vector:
            self._last_vector = vector
            self._last_progress_time = now
            return
        stalled_for = now - self._last_progress_time
        if stalled_for >= self.config.stall_cycles:
            self._trip(vector, stalled_for)

    # -- tripping ----------------------------------------------------------------

    def _trip(self, vector: tuple, stalled_for: float) -> None:
        diag = StallDiagnostics(
            time=self.system.now,
            events_processed=self.system.events.events_processed,
            stalled_for_cycles=stalled_for,
            progress_vector=vector,
            wait_for=self.system.wait_for_summary(),
            diagnostics=self.system.diagnostics(),
        )
        if self.config.bundle_dir is not None:
            diag.bundle_path = self._write_bundle(diag)
        self.tripped = diag
        raise StallError("simulation stalled: " + diag.summary())

    def _write_bundle(self, diag: StallDiagnostics) -> str:
        from repro.resilience.bundles import write_bundle

        stem = f"stall-{diag.events_processed:012d}"
        path = write_bundle(self.config.bundle_dir, stem, diag.to_dict())
        if self.config.action == "checkpoint":
            from repro.resilience.checkpoint import Checkpoint

            ckpt = Checkpoint.capture(self.system)
            ckpt.save(os.path.join(self.config.bundle_dir, stem + ".ckpt.json"))
        return path
