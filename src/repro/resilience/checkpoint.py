"""Checkpoint/resume for the simulator, via verified deterministic replay.

The event queue holds closures, so simulator state cannot be pickled and
restored directly.  It does not need to be: the simulation is
deterministic, so a checkpoint only has to prove that a rebuilt run is
retracing the original trajectory.  A :class:`Checkpoint` is therefore a
*fingerprint* of progress — the simulated cycle, the number of executed
events, the delivery/drop counters, per-collective-set progress, the live
fault set, the transport stats, and the positions of every seeded RNG —
sealed with a digest.

Resume (``--resume-from``) rebuilds the identical platform and replays
from t=0; when the replay's ``events_processed`` reaches the checkpoint's,
the monitor re-captures the fingerprint and compares field by field.  A
match proves, to the resolution of the fingerprint, that the resumed run
is cycle-identical to the interrupted one — every counter, every RNG
position, every set's chunk progress agrees — and the run simply
continues.  Any mismatch raises :class:`~repro.errors.CheckpointError`
naming the diverging fields, instead of silently producing numbers from a
different trajectory.

This trades replay compute for an ironclad determinism guarantee: resume
can never be *approximately* right.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import CheckpointError

#: Bump when the fingerprint schema changes; loads of other versions fail.
CHECKPOINT_VERSION = 1


def config_digest(config: Any) -> str:
    """Digest of a (frozen, nested-dataclass) simulation config.

    ``repr`` of frozen dataclasses is deterministic and covers every
    field, so two configs agree on this digest iff they are equal.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()[:16]


def platform_digest(system) -> str:
    """Digest identifying the platform a checkpoint belongs to.

    Covers the simulation config *and* the topology's identity (kind,
    NPU count, dimension sizes) — different torus shapes share one
    ``SimulationConfig``, so the config alone cannot tell platforms
    apart.  Resume against a different platform is refused before any
    cycles are spent replaying.
    """
    topology = system.topology
    key = (
        type(topology).__name__,
        topology.num_npus,
        repr(topology.dim_sizes(None)),
        repr(system.config),
    )
    return hashlib.sha256(repr(key).encode()).hexdigest()[:16]


@dataclass
class CheckpointConfig:
    """Cadence and destination for periodic checkpoints."""

    #: Take a checkpoint every this many simulated cycles.
    every_cycles: float
    #: Directory checkpoint JSON files are written into (created lazily).
    directory: str = "checkpoints"
    #: Filename prefix.
    prefix: str = "ckpt"

    def __post_init__(self) -> None:
        if self.every_cycles <= 0:
            raise CheckpointError(
                f"checkpoint cadence must be positive cycles, got "
                f"{self.every_cycles}"
            )


@dataclass
class Checkpoint:
    """One progress fingerprint (see the module docstring)."""

    version: int
    label: str
    config_digest: str
    cycle: float
    events_processed: int
    pending: int
    messages_delivered: int
    bytes_delivered: float
    messages_dropped: int
    #: Per-collective-set progress records.
    sets: list = field(default_factory=list)
    #: ``FaultState.snapshot()`` when a fault schedule is installed.
    faults: Optional[dict] = None
    #: Transport stats + jitter-RNG fingerprint when the reliable
    #: transport wraps the backend.
    transport: Optional[dict] = None
    digest: str = ""

    # -- capture -----------------------------------------------------------------

    @classmethod
    def capture(cls, system, label: str = "",
                cfg_digest: str = "") -> "Checkpoint":
        """Fingerprint ``system``'s progress right now."""
        # Sets are keyed by issue order, not set_id: set ids come from a
        # process-global counter, so they differ between the original run
        # and a replay in the same process without meaning divergence.
        sets = [
            {
                "index": i,
                "name": s.name,
                "op": s.op.value,
                "chunks_done": s.chunks_done,
                "num_chunks": s.num_chunks,
                "done": s.done,
            }
            for i, s in enumerate(system.sets)
        ]
        faults = (system.fault_state.snapshot()
                  if system.fault_state is not None else None)
        transport = None
        if system.transport is not None:
            transport = {
                "stats": system.transport.snapshot_stats().as_dict(),
                "rng_fingerprint": system.transport.rng_fingerprint(),
            }
        ckpt = cls(
            version=CHECKPOINT_VERSION,
            label=label,
            config_digest=cfg_digest or platform_digest(system),
            cycle=system.now,
            events_processed=system.events.events_processed,
            pending=system.events.pending,
            messages_delivered=system.backend.messages_delivered,
            bytes_delivered=system.backend.bytes_delivered,
            messages_dropped=system.backend.messages_dropped,
            sets=sets,
            faults=faults,
            transport=transport,
        )
        ckpt.digest = ckpt._compute_digest()
        return ckpt

    def _compute_digest(self) -> str:
        body = {k: v for k, v in self.to_dict().items() if k != "digest"}
        canonical = json.dumps(body, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "label": self.label,
            "config_digest": self.config_digest,
            "cycle": self.cycle,
            "events_processed": self.events_processed,
            "pending": self.pending,
            "messages_delivered": self.messages_delivered,
            "bytes_delivered": self.bytes_delivered,
            "messages_dropped": self.messages_dropped,
            "sets": self.sets,
            "faults": self.faults,
            "transport": self.transport,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Checkpoint":
        if not isinstance(data, dict):
            raise CheckpointError(
                f"checkpoint must be an object, got {type(data).__name__}")
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version!r}; this build "
                f"reads version {CHECKPOINT_VERSION}"
            )
        try:
            ckpt = cls(**{k: data[k] for k in (
                "version", "label", "config_digest", "cycle",
                "events_processed", "pending", "messages_delivered",
                "bytes_delivered", "messages_dropped", "sets", "faults",
                "transport", "digest")})
        except KeyError as exc:
            raise CheckpointError(f"checkpoint missing field {exc}") from None
        if ckpt.digest != ckpt._compute_digest():
            raise CheckpointError(
                "checkpoint digest mismatch: the file is corrupt or was "
                "edited after capture"
            )
        return ckpt

    def save(self, path: str) -> str:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)  # readers never see a torn checkpoint
        return path

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        try:
            with open(path) as f:
                data = json.load(f)
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"invalid checkpoint JSON in {path}: {exc}") from exc
        return cls.from_dict(data)

    # -- verification ------------------------------------------------------------

    def mismatches(self, system, label: str = "") -> list[str]:
        """Field-by-field differences between this fingerprint and
        ``system``'s state right now (empty = the replay is on track)."""
        current = Checkpoint.capture(system, label=label or self.label,
                                     cfg_digest=self.config_digest)
        diffs: list[str] = []
        mine, theirs = self.to_dict(), current.to_dict()
        for key in mine:
            if key in ("digest", "label"):
                continue
            if key == "config_digest":
                actual = platform_digest(system)
                if self.config_digest and self.config_digest != actual:
                    diffs.append(
                        f"config_digest: checkpoint {self.config_digest} != "
                        f"platform {actual} (different platform/config)"
                    )
                continue
            if mine[key] != theirs[key]:
                diffs.append(f"{key}: checkpoint {mine[key]!r} != run {theirs[key]!r}")
        return diffs

    def verify(self, system, label: str = "") -> None:
        """Raise :class:`CheckpointError` unless ``system`` matches."""
        diffs = self.mismatches(system, label=label)
        if diffs:
            raise CheckpointError(
                f"resume diverged from checkpoint at "
                f"events_processed={self.events_processed} "
                f"(t={self.cycle:,.0f}):\n  " + "\n  ".join(diffs)
            )

    def filename(self, prefix: str = "ckpt") -> str:
        return f"{prefix}-{self.events_processed:012d}.json"
