"""Shared writer for diagnostic bundles.

One on-disk format for every diagnostic artifact the toolchain emits —
watchdog stall bundles (PR 4) and supervisor poison-point bundles share
it, so downstream tooling (CI artifact collection, the chaos report
readers) parses one shape: a single JSON object per file, ``indent=2``,
``sort_keys=True``, trailing newline, named ``<stem>.json`` inside the
bundle directory.
"""

from __future__ import annotations

import json
import os
from typing import Any


def write_bundle(directory: str, stem: str, payload: dict[str, Any]) -> str:
    """Write ``payload`` as ``<directory>/<stem>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, stem + ".json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def read_bundle(path: str) -> Any:
    """Load a bundle previously written by :func:`write_bundle`.

    Defensive by design: the readers (the `astra-repro serve` job API
    inlines a quarantined job's bundle for its remote client; CI artifact
    tooling scans bundle directories) must not fail because a bundle was
    deleted, truncated, or hand-edited — a missing or unparseable bundle
    reads as ``None`` and only the diagnostic detail is lost.
    """
    try:
        with open(path) as f:
            loaded = json.load(f)
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None
