"""Shared writer for diagnostic bundles.

One on-disk format for every diagnostic artifact the toolchain emits —
watchdog stall bundles (PR 4) and supervisor poison-point bundles share
it, so downstream tooling (CI artifact collection, the chaos report
readers) parses one shape: a single JSON object per file, ``indent=2``,
``sort_keys=True``, trailing newline, named ``<stem>.json`` inside the
bundle directory.
"""

from __future__ import annotations

import json
import os
from typing import Any


def write_bundle(directory: str, stem: str, payload: dict[str, Any]) -> str:
    """Write ``payload`` as ``<directory>/<stem>.json``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, stem + ".json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
