"""The ``astra-repro chaos`` harness: fuzzed fault schedules, classified ends.

Robustness claim under test: **no combination of dynamic faults and
transport settings may hang the simulator silently.**  Every run must end
in one of four understood ways — success, a graceful
:class:`~repro.errors.CollectiveError`/:class:`~repro.errors.TransportError`
naming the phase and dead links, a watchdog-diagnosed
:class:`~repro.errors.StallError`, or a drain-deadlock
:class:`~repro.errors.SimulationError` carrying a wait-for summary.
Anything else (including tripping the ``max_events`` livelock guard) is a
:attr:`Outcome.FAILURE` and fails the harness.

Each iteration derives a child RNG from ``(seed, iteration)``, fuzzes a
fault schedule against the platform's actual fabric (link flaps, node
pauses with and without resume, lossy links, degraded links) plus a
transport config (timeouts, retry budgets, backoff, the
``max_paused_waits`` valve), then runs one collective under the stall
watchdog on the backend the iteration lands on (round-robin across
``backends``).  Everything is seeded: ``chaos --iterations K --seed S``
reproduces bit-identical schedules, so any classified failure is
replayable from its iteration number alone.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.collectives.types import CollectiveOp
from repro.config.parameters import TorusShape, TransportConfig
from repro.errors import (
    CollectiveError,
    ReproError,
    SimulationError,
    StallError,
    TransportError,
)
from repro.network.fault_schedule import FaultAction, FaultEvent, FaultSchedule
from repro.resilience.monitor import ResilienceConfig
from repro.resilience.watchdog import WatchdogConfig

#: Simulated-cycle window fault events are fuzzed into.  Sized to overlap
#: the first few thousand cycles of the fuzzed collectives, so faults
#: actually intersect in-flight traffic instead of landing after the run.
FAULT_HORIZON = 8_000.0

_OPS = (CollectiveOp.ALL_REDUCE, CollectiveOp.ALL_GATHER,
        CollectiveOp.REDUCE_SCATTER, CollectiveOp.ALL_TO_ALL)


class Outcome(enum.Enum):
    """How one chaos iteration ended."""

    SUCCESS = "success"
    #: The collective/transport layer gave up with a contextual error.
    GRACEFUL_FAILURE = "graceful_failure"
    #: The watchdog diagnosed a no-progress window (StallError).
    STALL = "stall"
    #: Drain deadlock with a wait-for summary attached.
    DIAGNOSED_DEADLOCK = "diagnosed_deadlock"
    #: Anything else — a silent hang, livelock guard, or unclassified
    #: exception.  Must never happen.
    FAILURE = "failure"
    #: The *host* failed the iteration — a worker process died or blew
    #: its supervised wall-clock deadline (docs/SUPERVISION.md), so the
    #: simulator never got to classify the run.  Must never happen.
    HOST_FAILURE = "host_failure"


#: Outcomes the harness accepts.
ACCEPTABLE = frozenset(
    {Outcome.SUCCESS, Outcome.GRACEFUL_FAILURE, Outcome.STALL,
     Outcome.DIAGNOSED_DEADLOCK})


@dataclass
class ChaosConfig:
    """Knobs of one chaos campaign."""

    iterations: int = 25
    seed: int = 0
    #: Backends iterations round-robin across ("fast", "detailed").
    backends: tuple = ("fast", "detailed")
    #: Collective payload per backend (the detailed backend moves flits,
    #: so it gets a smaller payload to keep wall-clock sane).
    size_bytes_fast: float = 256 * 1024.0
    size_bytes_detailed: float = 16 * 1024.0
    #: Livelock guard; the watchdog should always trip long before this.
    max_events: int = 5_000_000
    #: Fault-fuzz window per backend, sized to overlap the in-flight
    #: traffic of that backend's payload (see :data:`FAULT_HORIZON`).
    horizon_fast: float = FAULT_HORIZON
    horizon_detailed: float = 1_000.0
    #: Watchdog stall window for the fuzzed runs.
    stall_cycles: float = 1_500_000.0
    #: Where stall bundles land (None: in-error diagnostics only).
    bundle_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ReproError(f"chaos iterations must be positive, got "
                             f"{self.iterations}")
        unknown = set(self.backends) - {"fast", "detailed"}
        if not self.backends or unknown:
            raise ReproError(
                f"chaos backends must be a non-empty subset of "
                f"{{'fast', 'detailed'}}, got {self.backends!r}")


@dataclass
class ChaosRun:
    """Record of one classified iteration."""

    iteration: int
    backend: str
    op: str
    outcome: Outcome
    detail: str
    cycles: Optional[float] = None
    schedule: dict = field(default_factory=dict)
    transport: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "backend": self.backend,
            "op": self.op,
            "outcome": self.outcome.value,
            "detail": self.detail,
            "cycles": self.cycles,
            "schedule": self.schedule,
            "transport": self.transport,
        }


@dataclass
class ChaosReport:
    """All runs of a campaign plus the pass/fail verdict."""

    seed: int
    runs: list = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {o.value: 0 for o in Outcome}
        for run in self.runs:
            out[run.outcome.value] += 1
        return out

    @property
    def ok(self) -> bool:
        """True iff every run ended in an understood way."""
        return all(run.outcome in ACCEPTABLE for run in self.runs)

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "ok": self.ok, "counts": self.counts,
                "runs": [run.to_dict() for run in self.runs]}

    def format(self) -> str:
        lines = [f"chaos campaign (seed={self.seed}): {len(self.runs)} runs"]
        for run in self.runs:
            cycles = f" t={run.cycles:,.0f}" if run.cycles is not None else ""
            lines.append(
                f"  [{run.iteration:3d}] {run.backend:8s} {run.op:14s} "
                f"{run.outcome.value:18s}{cycles}  {run.detail}"
            )
        counts = ", ".join(f"{k}={v}" for k, v in self.counts.items() if v)
        lines.append(f"outcomes: {counts}")
        lines.append("verdict: " + ("OK — no silent hangs" if self.ok
                                    else "FAILURE — unclassified run(s)"))
        return "\n".join(lines)


# -- fuzzers ---------------------------------------------------------------------


def fuzz_schedule(rng: random.Random, link_pairs: list,
                  num_npus: int, horizon: float = FAULT_HORIZON) -> FaultSchedule:
    """A random (but seed-reproducible) fault schedule valid for a fabric
    whose directed link endpoint pairs are ``link_pairs``."""
    events: list[FaultEvent] = []
    for _ in range(rng.randint(2, 6)):
        t = rng.uniform(0.0, horizon)
        roll = rng.random()
        if roll < 0.40:
            link = rng.choice(link_pairs)
            events.append(FaultEvent(time=t, action=FaultAction.LINK_DOWN,
                                     link=link))
            if rng.random() < 0.70:  # 30% of downed links never recover
                events.append(FaultEvent(
                    time=t + rng.uniform(0.1, 0.5) * horizon,
                    action=FaultAction.LINK_UP, link=link))
        elif roll < 0.70:
            node = rng.randrange(num_npus)
            events.append(FaultEvent(time=t, action=FaultAction.NODE_PAUSE,
                                     node=node))
            if rng.random() < 0.70:  # 30% of paused nodes never resume
                events.append(FaultEvent(
                    time=t + rng.uniform(0.1, 0.5) * horizon,
                    action=FaultAction.NODE_RESUME, node=node))
        elif roll < 0.90:
            events.append(FaultEvent(
                time=t, action=FaultAction.DROP,
                link=rng.choice(link_pairs),
                probability=rng.uniform(0.01, 0.25)))
        else:
            events.append(FaultEvent(
                time=t, action=FaultAction.LINK_DEGRADE,
                link=rng.choice(link_pairs),
                bandwidth_factor=rng.uniform(0.2, 0.9),
                extra_latency_cycles=rng.uniform(0.0, 2_000.0)))
    return FaultSchedule(events, seed=rng.randrange(2**31))


def fuzz_transport(rng: random.Random) -> TransportConfig:
    """A random (seed-reproducible) reliable-transport configuration."""
    return TransportConfig(
        timeout_cycles=float(rng.choice([20_000, 50_000, 80_000])),
        timeout_per_byte=4.0,
        max_retries=rng.randint(2, 6),
        backoff_base_cycles=float(rng.choice([500, 1_000, 4_000])),
        backoff_factor=2.0,
        backoff_max_cycles=100_000.0,
        jitter=rng.choice([0.0, 0.1, 0.3]),
        seed=rng.randrange(2**31),
        max_paused_waits=rng.choice([5, 50, 1_000]),
    )


# -- the campaign -----------------------------------------------------------------


def _build_spec(backend: str, schedule: FaultSchedule,
                transport: TransportConfig, watchdog: WatchdogConfig):
    """A small 2x2x2 torus platform carrying the fuzzed fault/transport
    configuration, on the requested backend."""
    from dataclasses import replace

    from repro.harness.runners import torus_platform

    spec = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
    spec.config = replace(
        spec.config, system=replace(spec.config.system, transport=transport))
    spec.fault_schedule = schedule
    spec.resilience = ResilienceConfig(watchdog=watchdog, label=spec.name)
    if backend == "detailed":
        from repro.network.detailed.backend import DetailedBackend

        spec.backend_factory = (
            lambda events, network, sanitizer:
            DetailedBackend(events, network, sanitizer=sanitizer))
    return spec


def _classify(exc: BaseException) -> tuple[Outcome, str]:
    if isinstance(exc, StallError):
        return Outcome.STALL, str(exc).splitlines()[0]
    if isinstance(exc, (CollectiveError, TransportError)):
        return Outcome.GRACEFUL_FAILURE, str(exc).splitlines()[0]
    if isinstance(exc, SimulationError) and "wait-for summary" in str(exc):
        return Outcome.DIAGNOSED_DEADLOCK, str(exc).splitlines()[0]
    return Outcome.FAILURE, f"{type(exc).__name__}: {exc}"


def run_iteration(config: ChaosConfig, i: int) -> ChaosRun:
    """Fuzz, run, and classify chaos iteration ``i`` of a campaign.

    Module-level and driven only by ``(config, i)`` — the per-iteration
    RNG is ``random.Random(f"{seed}:{i}")``, never a shared stream — so
    iterations are independent, picklable for process-parallel fan-out,
    and classify identically at any job count.
    """
    from repro.harness.runners import run_collective

    rng = random.Random(f"{config.seed}:{i}")
    backend = config.backends[i % len(config.backends)]
    op = rng.choice(_OPS)
    size = (config.size_bytes_detailed if backend == "detailed"
            else config.size_bytes_fast)
    transport = fuzz_transport(rng)
    watchdog = WatchdogConfig(stall_cycles=config.stall_cycles,
                              check_every_events=64,
                              bundle_dir=config.bundle_dir)
    # Fuzz against the actual fabric: build the topology once just to
    # enumerate its directed link endpoint pairs.
    probe = _build_spec(backend, FaultSchedule([]), transport, watchdog)
    fabric = probe.topology_builder(probe.config.system).fabric
    link_pairs = sorted({(l.src, l.dst) for l in fabric.links})
    horizon = (config.horizon_detailed if backend == "detailed"
               else config.horizon_fast)
    schedule = fuzz_schedule(rng, link_pairs, fabric.num_npus,
                             horizon=horizon)

    spec = _build_spec(backend, schedule, transport, watchdog)
    try:
        result = run_collective(spec, op, size,
                                max_events=config.max_events)
        outcome, detail, cycles = (
            Outcome.SUCCESS, f"{result.duration_cycles:,.0f} cycles",
            result.duration_cycles)
    except Exception as exc:  # noqa: BLE001 - classification boundary
        outcome, detail = _classify(exc)
        cycles = None
    return ChaosRun(
        iteration=i, backend=backend, op=op.value, outcome=outcome,
        detail=detail, cycles=cycles, schedule=schedule.to_dict(),
        transport={"max_retries": transport.max_retries,
                   "timeout_cycles": transport.timeout_cycles,
                   "max_paused_waits": transport.max_paused_waits,
                   "jitter": transport.jitter,
                   "seed": transport.seed})


def run_chaos(config: ChaosConfig,
              log: Optional[Callable[[str], None]] = None,
              executor=None) -> ChaosReport:
    """Run one chaos campaign; returns the classified report.

    Iterations fan out through ``executor`` (a
    :class:`repro.parallel.ParallelExecutor`; defaults to the process
    -wide one).  Chaos runs are never cached — their side effects are the
    point — and the report is identical at any job count because every
    iteration seeds its own RNG from ``(seed, i)``.

    Under a :class:`repro.parallel.SupervisedExecutor` an iteration
    whose *worker* dies or hangs (as opposed to the simulated platform
    failing) is classified :attr:`Outcome.HOST_FAILURE` — never
    acceptable — instead of silently aborting the campaign.
    """
    import functools

    from repro.parallel import default_executor

    ex = executor if executor is not None else default_executor()
    iterate = functools.partial(run_iteration, config)
    if hasattr(ex, "map_outcomes"):
        runs = []
        for i, outcome in enumerate(ex.map_outcomes(iterate,
                                                    range(config.iterations))):
            if outcome.ok:
                runs.append(outcome.result)
            else:
                runs.append(ChaosRun(
                    iteration=i,
                    backend=config.backends[i % len(config.backends)],
                    op="?", outcome=Outcome.HOST_FAILURE,
                    detail=f"{outcome.failure_class}: {outcome.error}"))
    else:
        runs = ex.map(iterate, range(config.iterations))
    report = ChaosReport(seed=config.seed, runs=list(runs))
    if log is not None:
        for run in report.runs:
            log(f"[{run.iteration + 1}/{config.iterations}] {run.backend} "
                f"{run.op}: {run.outcome.value} ({run.detail})")
    return report
