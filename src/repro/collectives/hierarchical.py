"""Multi-phase hierarchical collective execution (Sec. III-D).

:class:`ChunkExecution` drives one chunk through its phase plan.  Every
phase instantiates per-group algorithm state machines lazily; a node
joins its group's instance in phase *p+1* the moment it finishes its role
in phase *p*, so chunks pipeline across dimensions exactly as the paper's
scheduler intends (different phases use different dedicated links).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.collectives.context import CollectiveContext
from repro.collectives.direct_algorithms import (
    DirectAllGather,
    DirectAllReduce,
    DirectAllToAll,
    DirectReduceScatter,
)
from repro.collectives.ring_algorithms import (
    RingAllGather,
    RingAllReduce,
    RingAllToAll,
    RingReduceScatter,
)
from repro.collectives.types import CollectiveOp, PhaseSpec
from repro.errors import CollectiveError
from repro.network.channel import RingChannel, SwitchChannel
from repro.network.physical.fabric import Fabric

_RING_ALGORITHMS = {
    CollectiveOp.REDUCE_SCATTER: RingReduceScatter,
    CollectiveOp.ALL_GATHER: RingAllGather,
    CollectiveOp.ALL_REDUCE: RingAllReduce,
    CollectiveOp.ALL_TO_ALL: RingAllToAll,
}

_DIRECT_ALGORITHMS = {
    CollectiveOp.REDUCE_SCATTER: DirectReduceScatter,
    CollectiveOp.ALL_GATHER: DirectAllGather,
    CollectiveOp.ALL_REDUCE: DirectAllReduce,
    CollectiveOp.ALL_TO_ALL: DirectAllToAll,
}


class ChunkExecution:
    """One chunk's journey through a multi-phase collective plan.

    ``chunk_index`` selects the dedicated channel within each phase (the
    LSQ the chunk is assigned to): ring phases use ring
    ``chunk_index % num_rings``; switch phases offset the per-peer switch
    spread by the same index.
    """

    def __init__(
        self,
        ctx: CollectiveContext,
        fabric: Fabric,
        plan: list[PhaseSpec],
        chunk_bytes: float,
        chunk_index: int = 0,
        on_done: Optional[Callable[["ChunkExecution"], None]] = None,
        on_phase_done: Optional[Callable[[int, int], None]] = None,
        label: str = "chunk",
    ):
        if chunk_bytes <= 0:
            raise CollectiveError(f"chunk size must be positive: {chunk_bytes}")
        self.ctx = ctx
        self.fabric = fabric
        self.plan = list(plan)
        self.chunk_bytes = float(chunk_bytes)
        self.chunk_index = chunk_index
        self.on_done = on_done
        self.on_phase_done = on_phase_done
        self.label = label

        self.nodes = list(range(fabric.num_npus))
        self._instances: dict[tuple[int, tuple], object] = {}
        self._finished_nodes = 0
        self._nodes_in_phase: list[int] = [0] * (len(self.plan) + 1)
        self._nodes_left_phase: list[int] = [0] * (len(self.plan) + 1)
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Per-phase [start, end] timestamps (end None while running),
        #: feeding the timeline/trace tooling.
        self.phase_spans: list[list[Optional[float]]] = [
            [None, None] for _ in self.plan
        ]

    # -- public ------------------------------------------------------------------

    def start(self) -> None:
        """All nodes enter phase 0 now (the chunk leaves the ready queue)."""
        if self.started_at is not None:
            raise CollectiveError(f"{self.label} started twice")
        self.started_at = self.ctx.now
        if not self.plan:
            self.finished_at = self.ctx.now
            if self.on_done is not None:
                self.ctx.after(0.0, lambda: self.on_done(self))
            return
        for node in self.nodes:
            self._enter_phase(node, 0)

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def phase_of(self, node_count_phase: int) -> int:
        """Number of nodes currently executing ``node_count_phase``."""
        return self._nodes_in_phase[node_count_phase]

    @property
    def current_min_phase(self) -> int:
        """The earliest phase any node is still in (len(plan) when done)."""
        for p, count in enumerate(self._nodes_in_phase[:-1]):
            if count > 0:
                return p
        return len(self.plan)

    # -- internals ---------------------------------------------------------------

    def _enter_phase(self, node: int, phase_idx: int) -> None:
        self._nodes_in_phase[phase_idx] += 1
        if self.phase_spans[phase_idx][0] is None:
            self.phase_spans[phase_idx][0] = self.ctx.now
        instance = self._instance_for(node, phase_idx)
        instance.start_node(node)

    def _leave_phase(self, node: int, phase_idx: int) -> None:
        self._nodes_in_phase[phase_idx] -= 1
        self._nodes_left_phase[phase_idx] += 1
        if self._nodes_left_phase[phase_idx] == len(self.nodes):
            # Every node has passed through this phase (a transient zero
            # while slow groups are still upstream does not count).
            self.phase_spans[phase_idx][1] = self.ctx.now
            if self.on_phase_done is not None:
                self.on_phase_done(self.chunk_index, phase_idx)
        next_idx = phase_idx + 1
        if next_idx < len(self.plan):
            self._enter_phase(node, next_idx)
        else:
            self._finished_nodes += 1
            if self._finished_nodes == len(self.nodes):
                self.finished_at = self.ctx.now
                if self.on_done is not None:
                    self.on_done(self)

    def _instance_for(self, node: int, phase_idx: int):
        spec = self.plan[phase_idx]
        group = self.fabric.group_of(spec.dim, node)
        key = (phase_idx, group)
        instance = self._instances.get(key)
        if instance is None:
            instance = self._build_instance(spec, group, phase_idx)
            self._instances[key] = instance
        return instance

    def _build_instance(self, spec: PhaseSpec, group: tuple, phase_idx: int):
        channels = self.fabric.channels_for(spec.dim, group)
        size = self.chunk_bytes * spec.size_fraction
        on_node_done = lambda n, p=phase_idx: self._leave_phase(n, p)  # noqa: E731
        label = f"{self.label}/p{phase_idx + 1}:{spec.op.value}@{spec.dim}"
        # Failure context propagated into the phase's algorithm: when a
        # mid-phase link dies for good, the CollectiveError names the phase
        # and dimension of the multi-phase plan, not just the group.
        fail_context = (
            f"phase {phase_idx + 1}/{len(self.plan)} "
            f"({spec.op.value} over {spec.dim.name}) of {self.label}"
        )

        from repro.topology.mapping import MappedRingChannel

        first = channels[0]
        if isinstance(first, (RingChannel, MappedRingChannel)):
            ring = channels[self.chunk_index % len(channels)]
            algorithm = _RING_ALGORITHMS[spec.op]
            instance = algorithm(
                self.ctx, ring, size,
                on_node_done=on_node_done,
                phase_index=phase_idx + 1,
                label=label,
            )
        elif isinstance(first, SwitchChannel):
            nodes = self._alltoall_group_nodes(group)
            algorithm = _DIRECT_ALGORITHMS[spec.op]
            instance = algorithm(
                self.ctx, nodes, channels, size,
                on_node_done=on_node_done,
                phase_index=phase_idx + 1,
                lsq_offset=self.chunk_index,
                label=label,
            )
        else:
            raise CollectiveError(f"unsupported channel type {type(first)!r}")
        instance.fail_context = fail_context
        return instance

    def _alltoall_group_nodes(self, group: tuple) -> list[int]:
        """Members of an alltoall-dimension group, in package order (the
        NPUs with the same local index across all packages)."""
        from repro.dims import Dimension

        return [
            n for n in self.nodes
            if self.fabric.group_of(Dimension.ALLTOALL, n) == group
        ]
