"""Direct collective algorithms on the switch-based alltoall dimension
(Sec. III-B, Fig. 5 right).

Every node exchanges with all peers "at the same time": a node issues one
message per peer in a single logical step, each routed through a global
switch.  Switch selection uses the Latin-square distance spread of
:meth:`AllToAllFabric.switch_for` (offset by the chunk's LSQ index) so
that with K switches >= peers every peer pair gets a dedicated
uplink/downlink, reproducing the Fig. 9 "one link per peer NAM" setup,
while small K models switch sharing and its queuing delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.collectives.base import (
    AllDoneCallback,
    CollectiveAlgorithmBase,
    NodeDoneCallback,
)
from repro.collectives.context import CollectiveContext
from repro.errors import CollectiveError
from repro.events.engine import CountdownBarrier
from repro.network.channel import SwitchChannel


@dataclass
class _DirectReceive:
    origin: int


class _DirectExchangeBase(CollectiveAlgorithmBase):
    """Common one-step exchange: send ``message_bytes`` to every peer, wait
    for a message from every peer, optionally paying a reduction delay."""

    #: Subclasses set whether receives pay the local-reduction delay.
    reduces = False

    def __init__(
        self,
        ctx: CollectiveContext,
        nodes: Sequence[int],
        switches: Sequence[SwitchChannel],
        size_bytes: float,
        on_node_done: Optional[NodeDoneCallback] = None,
        on_all_done: Optional[AllDoneCallback] = None,
        phase_index: int = 0,
        lsq_offset: int = 0,
        label: str = "direct",
    ):
        super().__init__(ctx, list(nodes), size_bytes, on_node_done, on_all_done,
                         phase_index, label)
        if not switches:
            raise CollectiveError("direct collective needs >= 1 switch channel")
        self.switches = list(switches)
        self.lsq_offset = lsq_offset
        self.message_bytes = self.size_bytes / len(self.nodes)
        # Each node is done after the N-1 concurrent receives of the
        # one-step exchange; the barrier's arrival accounting is what the
        # runtime sanitizer audits (over-arrival = duplicated delivery,
        # under-arrival at quiescence = a receive that never happened).
        self._barriers = {
            n: CountdownBarrier(
                len(self.nodes) - 1,
                lambda n=n: self._mark_done(n),
                name=f"{label}:node{n}",
                sanitizer=ctx.sanitizer,
            )
            for n in self.nodes
        }
        self._position = {n: i for i, n in enumerate(self.nodes)}

    def _switch_for(self, src: int, dst: int) -> SwitchChannel:
        """Distance-spread switch assignment, offset by the chunk's LSQ."""
        distance = (self._position[dst] - self._position[src]) % len(self.nodes)
        return self.switches[(distance - 1 + self.lsq_offset) % len(self.switches)]

    def _on_join(self, node: int) -> None:
        for peer in self.nodes:
            if peer == node:
                continue
            switch = self._switch_for(node, peer)
            self.ctx.send(
                node, peer, self.message_bytes,
                path=switch.path(node, peer),
                tag=(self.label, node, peer),
                on_delivered=lambda msg: self._deliver(msg.dst, _DirectReceive(msg.src)),
                phase_index=self.phase_index,
                on_failed=lambda failure, s=switch: self._fail_fast(failure, s),
            )

    def _fail_fast(self, failure, switch: SwitchChannel) -> None:
        """A switch up/downlink died for good (retry budget exhausted):
        unlike rings there is no counter-rotating spare, so fail with the
        phase/dimension context instead of letting the barrier hang."""
        where = f" in {self.fail_context}" if self.fail_context else ""
        raise CollectiveError(
            f"collective {self.label or type(self).__name__}{where} cannot "
            f"make progress through switch {switch.switch_id}: "
            f"{failure.describe()}; stuck ranks: {self.stuck_ranks()}"
        )

    def _process(self, node: int, item: _DirectReceive) -> None:
        delay = self.ctx.endpoint_delay_cycles
        if self.reduces:
            delay += self.ctx.reduction_cycles(self.message_bytes)
        self.ctx.after(delay, lambda: self._after_receive(node))

    def _after_receive(self, node: int) -> None:
        self._barriers[node].arrive()


class DirectReduceScatter(_DirectExchangeBase):
    """One-step reduce-scatter: node *i* sends segment *j* to node *j* and
    reduces the segments it receives (Fig. 5 right)."""

    reduces = True

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("label", "direct-rs")
        super().__init__(*args, **kwargs)


class DirectAllGather(_DirectExchangeBase):
    """One-step all-gather: every node broadcasts its segment to all peers."""

    reduces = False

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("label", "direct-ag")
        super().__init__(*args, **kwargs)


class DirectAllToAll(_DirectExchangeBase):
    """One-step all-to-all: reduce-scatter's traffic pattern without the
    local reduction (Sec. III-B)."""

    reduces = False

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("label", "direct-a2a")
        super().__init__(*args, **kwargs)


class DirectAllReduce:
    """Direct all-reduce: one-step reduce-scatter chained into a one-step
    all-gather over the same switches."""

    def __init__(
        self,
        ctx: CollectiveContext,
        nodes: Sequence[int],
        switches: Sequence[SwitchChannel],
        size_bytes: float,
        on_node_done: Optional[NodeDoneCallback] = None,
        on_all_done: Optional[AllDoneCallback] = None,
        phase_index: int = 0,
        lsq_offset: int = 0,
        label: str = "direct-ar",
    ):
        self.nodes = list(nodes)
        self.size_bytes = float(size_bytes)
        self._gather = DirectAllGather(
            ctx, nodes, switches, size_bytes,
            on_node_done=on_node_done,
            on_all_done=on_all_done,
            phase_index=phase_index,
            lsq_offset=lsq_offset,
            label=f"{label}/ag",
        )
        self._scatter = DirectReduceScatter(
            ctx, nodes, switches, size_bytes,
            on_node_done=self._gather.start_node,
            phase_index=phase_index,
            lsq_offset=lsq_offset,
            label=f"{label}/rs",
        )
        self.label = label

    def start_node(self, node: int) -> None:
        self._scatter.start_node(node)

    def start_all(self) -> None:
        for node in self.nodes:
            self.start_node(node)

    @property
    def done(self) -> bool:
        return self._gather.done

    def node_done(self, node: int) -> bool:
        return self._gather.node_done(node)

    @property
    def started_at(self) -> Optional[float]:
        return self._scatter.started_at

    @property
    def finished_at(self) -> Optional[float]:
        return self._gather.finished_at

    @property
    def fail_context(self) -> str:
        return self._scatter.fail_context

    @fail_context.setter
    def fail_context(self, value: str) -> None:
        # Both stages fail with the same phase/dimension context.
        self._scatter.fail_context = value
        self._gather.fail_context = value
