"""Topology-aware collective communication algorithms (Sec. III-B/III-D)."""

from repro.collectives.base import CollectiveAlgorithmBase
from repro.collectives.context import CollectiveContext, PhaseStats
from repro.collectives.direct_algorithms import (
    DirectAllGather,
    DirectAllReduce,
    DirectAllToAll,
    DirectReduceScatter,
)
from repro.collectives.hierarchical import ChunkExecution
from repro.collectives.ring_algorithms import (
    RingAllGather,
    RingAllReduce,
    RingAllToAll,
    RingReduceScatter,
)
from repro.collectives.types import CollectiveOp, PhaseSpec, build_phase_plan

__all__ = [
    "ChunkExecution",
    "CollectiveAlgorithmBase",
    "CollectiveContext",
    "CollectiveOp",
    "DirectAllGather",
    "DirectAllReduce",
    "DirectAllToAll",
    "DirectReduceScatter",
    "PhaseSpec",
    "PhaseStats",
    "RingAllGather",
    "RingAllReduce",
    "RingAllToAll",
    "RingReduceScatter",
    "build_phase_plan",
]
