"""Base machinery for per-node collective state machines.

Every algorithm instance spans the nodes of one topology group for one
chunk-phase.  Nodes *join* independently (a node joins a phase only when
it finished the previous phase of that chunk), receives that land before
the receiver has joined are buffered, and per-node completion is reported
upward so the chunk coordinator can advance each node to its next phase
without a global barrier — matching ASTRA-SIM's per-node stream
progression.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.collectives.context import CollectiveContext
from repro.errors import CollectiveError

NodeDoneCallback = Callable[[int], None]
AllDoneCallback = Callable[[], None]


class CollectiveAlgorithmBase:
    """Per-group, per-chunk-phase collective state machine."""

    def __init__(
        self,
        ctx: CollectiveContext,
        nodes: list[int],
        size_bytes: float,
        on_node_done: Optional[NodeDoneCallback] = None,
        on_all_done: Optional[AllDoneCallback] = None,
        phase_index: int = 0,
        label: str = "",
    ):
        if len(nodes) < 2:
            raise CollectiveError(f"collective needs >= 2 nodes, got {len(nodes)}")
        if len(set(nodes)) != len(nodes):
            raise CollectiveError(f"duplicate nodes in collective group: {nodes}")
        if size_bytes <= 0:
            raise CollectiveError(f"collective size must be positive: {size_bytes}")
        self.ctx = ctx
        self.nodes = list(nodes)
        self.size_bytes = float(size_bytes)
        self.on_node_done = on_node_done
        self.on_all_done = on_all_done
        self.phase_index = phase_index
        self.label = label

        self._joined: set[int] = set()
        self._done: set[int] = set()
        self._pending: dict[int, list] = {n: [] for n in nodes}
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Where this instance sits in a multi-phase plan ("phase 2/3
        #: (all_reduce over HORIZONTAL) of set1/c0"), attached by the chunk
        #: coordinator so an unrecoverable transport failure in any phase
        #: surfaces as a :class:`CollectiveError` that names the phase and
        #: dimension instead of a bare transport diagnostic.
        self.fail_context: str = ""

    def stuck_ranks(self) -> list[int]:
        """The ranks that have not completed this instance (failure report)."""
        return sorted(set(self.nodes) - self._done)

    # -- lifecycle -------------------------------------------------------------

    def start_node(self, node: int) -> None:
        """``node`` joins this phase (its previous phase finished)."""
        if node not in self._pending:
            raise CollectiveError(f"node {node} is not part of {self.label or self!r}")
        if node in self._joined:
            raise CollectiveError(f"node {node} joined {self.label or self!r} twice")
        self._joined.add(node)
        if self.started_at is None:
            self.started_at = self.ctx.now
        self._on_join(node)
        buffered, self._pending[node] = self._pending[node], []
        for item in buffered:
            self._process(node, item)

    def start_all(self) -> None:
        """Convenience for tests / single-phase runs: all nodes join now."""
        for node in self.nodes:
            self.start_node(node)

    @property
    def done(self) -> bool:
        return len(self._done) == len(self.nodes)

    def node_done(self, node: int) -> bool:
        return node in self._done

    # -- subclass protocol -------------------------------------------------------

    def _on_join(self, node: int) -> None:
        """Issue the node's initial sends.  Subclasses override."""
        raise NotImplementedError

    def _process(self, node: int, item: object) -> None:
        """Handle one received item for a joined node.  Subclasses override."""
        raise NotImplementedError

    # -- helpers for subclasses ---------------------------------------------------

    def _deliver(self, node: int, item: object) -> None:
        """Route a received item to ``node``, buffering until it joins."""
        if node in self._joined:
            self._process(node, item)
        else:
            self._pending[node].append(item)

    def _mark_done(self, node: int) -> None:
        if node in self._done:
            raise CollectiveError(f"node {node} completed {self.label or self!r} twice")
        self._done.add(node)
        if self.on_node_done is not None:
            self.on_node_done(node)
        if self.done:
            self.finished_at = self.ctx.now
            if self.on_all_done is not None:
                self.on_all_done()
