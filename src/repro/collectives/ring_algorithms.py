"""Ring collective algorithms (Sec. III-B, Fig. 5 left).

All four collectives over one unidirectional :class:`RingChannel`.  Data
sizes follow the paper's convention: an algorithm with input size ``S``
on an ``n``-node ring exchanges messages of ``S/n`` (Table II: message
count proportional to the number of nodes).

* reduce-scatter — N-1 steps of send-to-next / reduce (Fig. 5).
* all-gather — N-1 relay steps, no reduction.
* all-reduce — reduce-scatter chained into all-gather.
* all-to-all — N-1 rounds; round *i* targets the node at distance *i*,
  relayed hop-by-hop under software routing (endpoint delay per relay) or
  cut through the fabric under hardware routing (Table III #14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.collectives.base import (
    AllDoneCallback,
    CollectiveAlgorithmBase,
    NodeDoneCallback,
)
from repro.collectives.context import CollectiveContext
from repro.config.parameters import InjectionPolicy, PacketRouting
from repro.errors import CollectiveError
from repro.network.channel import RingChannel
from repro.network.message import Message


class _ResilientRingMixin:
    """Reroute-or-fail-fast policy shared by the ring algorithms.

    Only active under the reliable transport (``ctx.send`` drops the
    ``on_failed`` callback otherwise): when the retry budget for a message
    is exhausted — a permanently dead link — the algorithm reroutes every
    subsequent message over the counter-rotating companion ring
    (``ring.reverse_channel``, same logical neighbors, opposite physical
    direction) when the fabric provides one.  A failure on the surviving
    direction too, or a ring with no reverse, fails fast with a
    diagnostic naming the dead link and the ranks that never finished.
    """

    #: Once True, all sends route over ``ring.reverse_channel``.
    _rerouted = False

    def _route(self, src: int, dst: int):
        channel = self.ring.reverse_channel if self._rerouted else self.ring
        return channel.path(src, dst)

    def _on_send_failed(self, failure, via_reverse: bool, resend) -> None:
        if not via_reverse and self.ring.reverse_channel is not None:
            self._rerouted = True
            resend()
            return
        self._fail_fast(failure)

    def _fail_fast(self, failure) -> None:
        stuck = self.stuck_ranks()
        direction = "surviving ring direction" if self._rerouted else "ring"
        where = f" in {self.fail_context}" if self.fail_context else ""
        raise CollectiveError(
            f"collective {self.label or type(self).__name__}{where} cannot "
            f"make progress on the {direction}: {failure.describe()}; "
            f"stuck ranks: {stuck}"
        )


class RingReduceScatter(_ResilientRingMixin, CollectiveAlgorithmBase):
    """Ring reduce-scatter: after N-1 steps each node holds one globally
    reduced segment of size ``size_bytes / n``."""

    def __init__(
        self,
        ctx: CollectiveContext,
        ring: RingChannel,
        size_bytes: float,
        on_node_done: Optional[NodeDoneCallback] = None,
        on_all_done: Optional[AllDoneCallback] = None,
        phase_index: int = 0,
        label: str = "ring-rs",
    ):
        super().__init__(ctx, ring.nodes, size_bytes, on_node_done, on_all_done,
                         phase_index, label)
        self.ring = ring
        self.message_bytes = self.size_bytes / ring.size

    def _send_step(self, node: int, step: int) -> None:
        nxt = self.ring.next_node(node)
        via_reverse = self._rerouted
        self.ctx.send(
            node, nxt, self.message_bytes,
            path=self._route(node, nxt),
            tag=(self.label, step),
            on_delivered=lambda msg, s=step: self._deliver(msg.dst, s),
            phase_index=self.phase_index,
            on_failed=lambda failure: self._on_send_failed(
                failure, via_reverse, lambda: self._send_step(node, step)),
        )

    def _on_join(self, node: int) -> None:
        self._send_step(node, 1)

    def _process(self, node: int, step: int) -> None:
        delay = self.ctx.endpoint_delay_cycles + self.ctx.reduction_cycles(self.message_bytes)
        self.ctx.after(delay, lambda: self._after_reduce(node, step))

    def _after_reduce(self, node: int, step: int) -> None:
        if step < self.ring.size - 1:
            self._send_step(node, step + 1)
        else:
            self._mark_done(node)


class RingAllGather(_ResilientRingMixin, CollectiveAlgorithmBase):
    """Ring all-gather: each node starts with ``size_bytes / n`` and relays
    until it holds all ``size_bytes``.  No reduction delay."""

    def __init__(
        self,
        ctx: CollectiveContext,
        ring: RingChannel,
        size_bytes: float,
        on_node_done: Optional[NodeDoneCallback] = None,
        on_all_done: Optional[AllDoneCallback] = None,
        phase_index: int = 0,
        label: str = "ring-ag",
    ):
        super().__init__(ctx, ring.nodes, size_bytes, on_node_done, on_all_done,
                         phase_index, label)
        self.ring = ring
        self.message_bytes = self.size_bytes / ring.size

    def _send_step(self, node: int, step: int) -> None:
        nxt = self.ring.next_node(node)
        via_reverse = self._rerouted
        self.ctx.send(
            node, nxt, self.message_bytes,
            path=self._route(node, nxt),
            tag=(self.label, step),
            on_delivered=lambda msg, s=step: self._deliver(msg.dst, s),
            phase_index=self.phase_index,
            on_failed=lambda failure: self._on_send_failed(
                failure, via_reverse, lambda: self._send_step(node, step)),
        )

    def _on_join(self, node: int) -> None:
        self._send_step(node, 1)

    def _process(self, node: int, step: int) -> None:
        self.ctx.after(
            self.ctx.endpoint_delay_cycles,
            lambda: self._after_receive(node, step),
        )

    def _after_receive(self, node: int, step: int) -> None:
        if step < self.ring.size - 1:
            self._send_step(node, step + 1)
        else:
            self._mark_done(node)


class RingAllReduce:
    """Ring all-reduce: reduce-scatter chained into all-gather on the same
    channel (Sec. III-B: "all-reduce ... can be done using a reduce-scatter
    followed by an all-gather").  Each node enters the all-gather stage as
    soon as its own reduce-scatter role completes."""

    def __init__(
        self,
        ctx: CollectiveContext,
        ring: RingChannel,
        size_bytes: float,
        on_node_done: Optional[NodeDoneCallback] = None,
        on_all_done: Optional[AllDoneCallback] = None,
        phase_index: int = 0,
        label: str = "ring-ar",
    ):
        self.nodes = list(ring.nodes)
        self.size_bytes = float(size_bytes)
        self._gather = RingAllGather(
            ctx, ring, size_bytes,
            on_node_done=on_node_done,
            on_all_done=on_all_done,
            phase_index=phase_index,
            label=f"{label}/ag",
        )
        self._scatter = RingReduceScatter(
            ctx, ring, size_bytes,
            on_node_done=self._gather.start_node,
            phase_index=phase_index,
            label=f"{label}/rs",
        )
        self.label = label

    def start_node(self, node: int) -> None:
        self._scatter.start_node(node)

    def start_all(self) -> None:
        for node in self.nodes:
            self.start_node(node)

    @property
    def done(self) -> bool:
        return self._gather.done

    def node_done(self, node: int) -> bool:
        return self._gather.node_done(node)

    @property
    def started_at(self) -> Optional[float]:
        return self._scatter.started_at

    @property
    def finished_at(self) -> Optional[float]:
        return self._gather.finished_at

    @property
    def fail_context(self) -> str:
        return self._scatter.fail_context

    @fail_context.setter
    def fail_context(self, value: str) -> None:
        # Both stages fail with the same phase/dimension context.
        self._scatter.fail_context = value
        self._gather.fail_context = value


@dataclass
class _A2AReceive:
    """A final (destination-reached) all-to-all message."""

    origin: int


class RingAllToAll(_ResilientRingMixin, CollectiveAlgorithmBase):
    """Ring all-to-all: N-1 rounds, round *i* sending ``size/n`` to the node
    at downstream distance *i* (Sec. III-B).

    Under software routing each hop terminates in the intermediate NPU's
    messaging unit, pays the endpoint delay, and is re-injected; under
    hardware routing the message cuts through the fabric along the whole
    multi-link path.  Injection pacing follows Table III #15: NORMAL
    issues round *i+1* once round *i*'s first hop is delivered; AGGRESSIVE
    issues every round at join time.
    """

    def __init__(
        self,
        ctx: CollectiveContext,
        ring: RingChannel,
        size_bytes: float,
        on_node_done: Optional[NodeDoneCallback] = None,
        on_all_done: Optional[AllDoneCallback] = None,
        phase_index: int = 0,
        label: str = "ring-a2a",
    ):
        super().__init__(ctx, ring.nodes, size_bytes, on_node_done, on_all_done,
                         phase_index, label)
        self.ring = ring
        self.message_bytes = self.size_bytes / ring.size
        self._received: dict[int, int] = {n: 0 for n in ring.nodes}
        self._rounds_issued: dict[int, int] = {n: 0 for n in ring.nodes}

    # -- sending ----------------------------------------------------------------

    def _issue_round(self, node: int, round_index: int) -> None:
        final_dst = self.ring.node_at_distance(node, round_index)
        self._rounds_issued[node] = round_index
        if round_index == self.ring.size - 1 and node in self._joined:
            # All receives may already have landed; re-check completion once
            # the final round is on the wire.
            self.ctx.after(0.0, lambda: self._maybe_done(node))
        if self.ctx.packet_routing is PacketRouting.HARDWARE:
            via_reverse = self._rerouted
            self.ctx.send(
                node, final_dst, self.message_bytes, self._route(node, final_dst),
                tag=(self.label, node, final_dst),
                on_delivered=lambda msg: self._on_hop(msg, node, final_dst, round_index),
                phase_index=self.phase_index,
                on_failed=lambda failure: self._on_send_failed(
                    failure, via_reverse,
                    lambda: self._resend_direct(node, final_dst, round_index)),
            )
        else:
            self._send_hop(node, node, final_dst, round_index)

    def _resend_direct(self, node: int, final_dst: int, round_index: int) -> None:
        via_reverse = self._rerouted
        self.ctx.send(
            node, final_dst, self.message_bytes, self._route(node, final_dst),
            tag=(self.label, node, final_dst),
            on_delivered=lambda msg: self._on_hop(msg, node, final_dst, round_index),
            phase_index=self.phase_index,
            on_failed=lambda failure: self._on_send_failed(
                failure, via_reverse,
                lambda: self._resend_direct(node, final_dst, round_index)),
        )

    def _send_hop(self, current: int, origin: int, final_dst: int, round_index: int) -> None:
        nxt = self.ring.next_node(current)
        via_reverse = self._rerouted
        self.ctx.send(
            current, nxt, self.message_bytes,
            path=self._route(current, nxt),
            tag=(self.label, origin, final_dst),
            on_delivered=lambda msg: self._on_hop(msg, origin, final_dst, round_index),
            phase_index=self.phase_index,
            on_failed=lambda failure: self._on_send_failed(
                failure, via_reverse,
                lambda: self._send_hop(current, origin, final_dst, round_index)),
        )

    def _on_hop(self, message: Message, origin: int, final_dst: int, round_index: int) -> None:
        here = message.dst
        # NORMAL pacing: issue the origin's next round once this round has
        # cleared its injection point — the first ring hop under software
        # routing, full delivery under hardware routing (where _on_hop only
        # fires at the destination).
        first_hop_cleared = (
            here == final_dst
            if self.ctx.packet_routing is PacketRouting.HARDWARE
            else here == self.ring.next_node(origin)
        )
        if (first_hop_cleared
                and self.ctx.injection_policy is InjectionPolicy.NORMAL
                and self._rounds_issued[origin] == round_index
                and round_index < self.ring.size - 1):
            self._issue_round(origin, round_index + 1)

        if here == final_dst:
            self.ctx.after(
                self.ctx.endpoint_delay_cycles,
                lambda: self._deliver(final_dst, _A2AReceive(origin)),
            )
        else:
            # Relay: the intermediate messaging unit forwards without
            # needing that node's own chunk data, so no join gating.
            self.ctx.after(
                self.ctx.endpoint_delay_cycles,
                lambda: self._send_hop(here, origin, final_dst, round_index),
            )

    # -- lifecycle ----------------------------------------------------------------

    def _on_join(self, node: int) -> None:
        if self.ring.size < 2:  # pragma: no cover - guarded by RingChannel
            raise CollectiveError("all-to-all needs a ring of >= 2 nodes")
        if self.ctx.injection_policy is InjectionPolicy.AGGRESSIVE:
            for r in range(1, self.ring.size):
                self._issue_round(node, r)
        else:
            self._issue_round(node, 1)
        self._maybe_done(node)

    def _process(self, node: int, item: _A2AReceive) -> None:
        self._received[node] += 1
        self._maybe_done(node)

    def _maybe_done(self, node: int) -> None:
        wanted = self.ring.size - 1
        if (self._received[node] == wanted
                and self._rounds_issued[node] == wanted
                and not self.node_done(node)):
            self._mark_done(node)
