"""Collective operation types and multi-phase plans (Sec. III-B, III-D).

A *plan* is the multi-phase decomposition of one collective over a
hierarchical topology: an ordered list of :class:`PhaseSpec`, one per
dimension traversal.  Every phase algorithm takes an *input size* ``S``
and internally divides it by the ring/group size, so ``size_fraction``
expresses how much of the chunk a phase operates on (the enhanced
all-reduce shrinks the inter-package phases by the local dimension size).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config.parameters import CollectiveAlgorithm
from repro.errors import CollectiveError
from repro.dims import Dimension


class CollectiveOp(enum.Enum):
    """The four collective operations of Fig. 4 (plus NONE for layers
    without communication in some training phase)."""

    ALL_REDUCE = "allreduce"
    ALL_GATHER = "allgather"
    REDUCE_SCATTER = "reducescatter"
    ALL_TO_ALL = "alltoall"
    NONE = "none"


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a multi-phase collective.

    ``size_fraction`` scales the chunk size to this phase's input size.
    """

    dim: Dimension
    op: CollectiveOp
    size_fraction: float

    def __post_init__(self) -> None:
        if self.op is CollectiveOp.NONE:
            raise CollectiveError("a phase cannot be a NONE operation")
        if not 0 < self.size_fraction <= 1:
            raise CollectiveError(
                f"size_fraction must be in (0, 1], got {self.size_fraction}"
            )


def build_phase_plan(
    op: CollectiveOp,
    dims: list[tuple[Dimension, int]],
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.BASELINE,
) -> list[PhaseSpec]:
    """Build the multi-phase plan for ``op`` over ``dims``.

    ``dims`` lists (dimension, group size) pairs in traversal order —
    local first, then vertical, then horizontal (Sec. III-D) — restricted
    to the dimensions the collective spans (hybrid parallelism scopes
    collectives to a subset of dimensions).  Dimensions of size 1 are
    skipped.

    Baseline all-reduce runs a full all-reduce per dimension.  Enhanced
    all-reduce (Sec. III-D) exploits asymmetric bandwidth: reduce-scatter
    on the local dimension, all-reduce of the 1/M remainder on the
    inter-package dimensions, all-gather on the local dimension — cutting
    inter-package traffic by the local size M.
    """
    if op is CollectiveOp.NONE:
        return []
    active = [(d, n) for d, n in dims if n > 1]
    if not active:
        return []
    for d, n in active:
        if n < 2:
            raise CollectiveError(f"dimension {d} size must be >= 2, got {n}")

    if op is CollectiveOp.ALL_REDUCE:
        return _all_reduce_plan(active, algorithm)
    if op is CollectiveOp.REDUCE_SCATTER:
        return _reduce_scatter_plan(active)
    if op is CollectiveOp.ALL_GATHER:
        return _all_gather_plan(active)
    if op is CollectiveOp.ALL_TO_ALL:
        return [PhaseSpec(d, CollectiveOp.ALL_TO_ALL, 1.0) for d, _ in active]
    raise CollectiveError(f"unsupported collective op: {op}")


def _all_reduce_plan(
    active: list[tuple[Dimension, int]], algorithm: CollectiveAlgorithm
) -> list[PhaseSpec]:
    first_dim, first_size = active[0]
    enhanced_applies = (
        algorithm is CollectiveAlgorithm.ENHANCED
        and first_dim is Dimension.LOCAL
        and len(active) > 1
    )
    if not enhanced_applies:
        return [PhaseSpec(d, CollectiveOp.ALL_REDUCE, 1.0) for d, _ in active]

    plan = [PhaseSpec(first_dim, CollectiveOp.REDUCE_SCATTER, 1.0)]
    inter_fraction = 1.0 / first_size
    plan.extend(
        PhaseSpec(d, CollectiveOp.ALL_REDUCE, inter_fraction) for d, _ in active[1:]
    )
    plan.append(PhaseSpec(first_dim, CollectiveOp.ALL_GATHER, 1.0))
    return plan


def _reduce_scatter_plan(active: list[tuple[Dimension, int]]) -> list[PhaseSpec]:
    plan = []
    fraction = 1.0
    for dim, size in active:
        plan.append(PhaseSpec(dim, CollectiveOp.REDUCE_SCATTER, fraction))
        fraction /= size
    return plan


def _all_gather_plan(active: list[tuple[Dimension, int]]) -> list[PhaseSpec]:
    """All-gather traverses dimensions outside-in (reverse of reduce-scatter)
    with the gathered size growing; the last phase gathers the full chunk."""
    total = 1
    for _, size in active:
        total *= size
    plan = []
    cumulative = 1
    for dim, size in reversed(active):
        cumulative *= size
        plan.append(PhaseSpec(dim, CollectiveOp.ALL_GATHER, cumulative / total))
    return plan


def num_phases(plan: list[PhaseSpec]) -> int:
    return len(plan)
