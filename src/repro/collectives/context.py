"""Execution context shared by collective algorithm instances.

Bundles the network backend with the system-layer constants every
algorithm needs (endpoint delay, local-reduction rate, routing mode) and
a stats sink used to build the Fig. 12b / Fig. 16 queue-vs-network delay
breakdowns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config.parameters import InjectionPolicy, PacketRouting
from repro.errors import CollectiveError
from repro.network.api import NetworkBackend
from repro.network.link import Link
from repro.network.message import Message


@dataclass
class PhaseStats:
    """Accumulated message timing for one phase index across a run.

    Per-message values are kept and reduced with :func:`math.fsum` on
    read: the exact sum rounded once, so the totals are bit-identical no
    matter what order messages were recorded in.  An incrementally
    rounded ``+=`` would drift in the last ulp whenever delivery order is
    perturbed (parallel execution, schedule tie permutation — see
    docs/DETERMINISM.md).
    """

    messages: int = 0
    queue_values: list[float] = field(default_factory=list, repr=False)
    network_values: list[float] = field(default_factory=list, repr=False)
    byte_values: list[float] = field(default_factory=list, repr=False)

    def record(self, message: Message) -> None:
        self.messages += 1
        self.queue_values.append(message.queueing_cycles)
        self.network_values.append(message.network_cycles)
        self.byte_values.append(message.size_bytes)

    @property
    def queue_cycles(self) -> float:
        return math.fsum(self.queue_values)

    @property
    def network_cycles(self) -> float:
        return math.fsum(self.network_values)

    @property
    def bytes(self) -> float:
        return math.fsum(self.byte_values)

    @property
    def mean_queue_cycles(self) -> float:
        return self.queue_cycles / self.messages if self.messages else 0.0

    @property
    def mean_network_cycles(self) -> float:
        return self.network_cycles / self.messages if self.messages else 0.0

    def merge_from(self, other: "PhaseStats") -> None:
        """Fold another phase's samples in (order-invariant: the merged
        totals fsum over the union of samples)."""
        self.messages += other.messages
        self.queue_values.extend(other.queue_values)
        self.network_values.extend(other.network_values)
        self.byte_values.extend(other.byte_values)

    def as_dict(self) -> dict:
        """JSON-serializable form (run-cache payloads, bench reports)."""
        return {
            "messages": self.messages,
            "queue_cycles": self.queue_cycles,
            "network_cycles": self.network_cycles,
            "bytes": self.bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseStats":
        return cls(
            messages=int(data["messages"]),
            queue_values=[float(data["queue_cycles"])],
            network_values=[float(data["network_cycles"])],
            byte_values=[float(data["bytes"])],
        )


class CollectiveContext:
    """Wiring between collective state machines and the platform.

    ``reduction_cycles_per_kb`` is the layer's "local update time" from the
    workload file (Fig. 8): the average cycles to reduce 1 KB of received
    data.  ``endpoint_delay`` is Table III #13.
    """

    def __init__(
        self,
        backend: NetworkBackend,
        endpoint_delay_cycles: float = 10.0,
        reduction_cycles_per_kb: float = 1.0,
        packet_routing: PacketRouting = PacketRouting.SOFTWARE,
        injection_policy: InjectionPolicy = InjectionPolicy.NORMAL,
        stats_sink: Optional[Callable[[int, Message], None]] = None,
    ):
        if endpoint_delay_cycles < 0:
            raise CollectiveError("endpoint delay must be >= 0")
        if reduction_cycles_per_kb < 0:
            raise CollectiveError("reduction rate must be >= 0")
        self.backend = backend
        #: The backend's runtime sanitizer (None unless --sanitize); state
        #: machines hand it to their CountdownBarriers for arrival checking.
        self.sanitizer = backend.sanitizer
        self.endpoint_delay_cycles = endpoint_delay_cycles
        self.reduction_cycles_per_kb = reduction_cycles_per_kb
        self.packet_routing = packet_routing
        self.injection_policy = injection_policy
        self.stats_sink = stats_sink

    @property
    def now(self) -> float:
        return self.backend.now

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        self.backend.schedule(delay, callback)

    def reduction_cycles(self, size_bytes: float) -> float:
        """Local-reduction delay for ``size_bytes`` of received data."""
        return self.reduction_cycles_per_kb * size_bytes / 1024.0

    @property
    def reliable(self) -> bool:
        """Whether the backend reports delivery failures (reliable transport)."""
        return getattr(self.backend, "supports_failure_callback", False)

    def send(
        self,
        src: int,
        dst: int,
        size_bytes: float,
        path: list[Link],
        tag: object,
        on_delivered: Callable[[Message], None],
        phase_index: int = 0,
        on_failed: Optional[Callable] = None,
    ) -> Message:
        """Inject one message and record its timing under ``phase_index``.

        ``on_failed`` receives a :class:`repro.system.transport.TransportFailure`
        when the reliable transport exhausts its retry budget; it is only
        honored when the backend supports failure reporting (a raw backend
        never reports loss — an undeliverable message simply deadlocks the
        run, surfaced by the wait-for summary).
        """
        message = Message(src=src, dst=dst, size_bytes=size_bytes, tag=tag)

        def delivered(msg: Message) -> None:
            if self.stats_sink is not None:
                self.stats_sink(phase_index, msg)
            on_delivered(msg)

        if on_failed is not None and self.reliable:
            self.backend.send(message, path, delivered, on_failed=on_failed)
        else:
            self.backend.send(message, path, delivered)
        return message
