"""Figs. 14, 15, 16 — ResNet-50 detailed analysis on a 2x4x4 torus.

Setup (Secs. V-E/V-F): two training iterations of data-parallel ResNet-50
on a 2x4x4 torus, LIFO scheduling, local minibatch 32, 4-phase
(enhanced) all-reduce.

* Fig. 14: layer-wise total raw communication time (weight gradients
  only — data parallelism).
* Fig. 15: layer-wise compute time and exposed communication.
* Fig. 16: the queue/network breakdown, FIFO vs LIFO — expected to be
  nearly identical (the fast local dimension drains phase 1 so quickly
  that LIFO degenerates to in-order execution; Queue P2 dominates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import LayerRow, layer_rows
from repro.config.parameters import CollectiveAlgorithm, SchedulingPolicy, TorusShape
from repro.harness.runners import run_training, torus_platform
from repro.models.resnet50 import resnet50
from repro.system.stats import DelayBreakdown
from repro.workload.training_loop import TrainingReport

SHAPE = TorusShape(2, 4, 4)


@dataclass
class ResnetRun:
    policy: SchedulingPolicy
    report: TrainingReport
    breakdown: DelayBreakdown

    def rows(self) -> list[LayerRow]:
        return layer_rows(self.report)


def run(
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.LIFO,
    num_iterations: int = 2,
    shape: TorusShape = SHAPE,
    compute_scale: float = 1.0,
) -> ResnetRun:
    platform = torus_platform(
        shape,
        algorithm=CollectiveAlgorithm.ENHANCED,
        scheduling_policy=scheduling_policy,
        horizontal_rings=1,
        vertical_rings=1,
        compute_scale=compute_scale,
    )
    model = resnet50(compute=platform.config.compute, minibatch=32)
    report, system = run_training(model, platform, num_iterations=num_iterations)
    return ResnetRun(
        policy=scheduling_policy, report=report, breakdown=system.breakdown
    )


def run_fifo_vs_lifo(num_iterations: int = 2) -> dict[str, ResnetRun]:
    """The Fig. 16 comparison."""
    return {
        "LIFO": run(SchedulingPolicy.LIFO, num_iterations),
        "FIFO": run(SchedulingPolicy.FIFO, num_iterations),
    }
