"""Collective bandwidth test (the "bandwidth test" of Sec. V).

Reports, per collective and message size, the figures every collective
benchmark suite prints:

* latency — set request to completion (cycles),
* algorithm bandwidth (algbw) — payload bytes / time,
* bus bandwidth (busbw) — algbw scaled by the collective's traffic
  factor (2(n-1)/n for all-reduce, (n-1)/n for reduce-scatter,
  all-gather and all-to-all), comparable against raw link bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.collectives.types import CollectiveOp
from repro.errors import CollectiveError
from repro.harness.runners import MAX_EVENTS, PlatformSpec


@dataclass(frozen=True)
class BandwidthPoint:
    """One (collective, size) measurement."""

    op: CollectiveOp
    size_bytes: float
    latency_cycles: float
    algbw_bytes_per_cycle: float
    busbw_bytes_per_cycle: float


def traffic_factor(op: CollectiveOp, n: int) -> float:
    """Per-node traffic as a multiple of the payload (nccl-tests style)."""
    if n < 2:
        raise CollectiveError(f"need >= 2 nodes, got {n}")
    if op is CollectiveOp.ALL_REDUCE:
        return 2.0 * (n - 1) / n
    if op in (CollectiveOp.REDUCE_SCATTER, CollectiveOp.ALL_GATHER,
              CollectiveOp.ALL_TO_ALL):
        return (n - 1) / n
    raise CollectiveError(f"no traffic factor for {op}")


def measure(
    platform_builder: Callable[[], PlatformSpec],
    op: CollectiveOp,
    sizes: Sequence[float],
    sanitize: bool = False,
) -> list[BandwidthPoint]:
    """Run the bandwidth test: one fresh platform per point."""
    points = []
    for size in sizes:
        platform = platform_builder()
        system = platform.build_system(sanitize=sanitize)
        collective = system.request_collective(op, size)
        system.run_until_idle(max_events=MAX_EVENTS)
        latency = collective.duration_cycles
        algbw = size / latency
        busbw = algbw * traffic_factor(op, system.topology.num_npus)
        points.append(BandwidthPoint(
            op=op,
            size_bytes=size,
            latency_cycles=latency,
            algbw_bytes_per_cycle=algbw,
            busbw_bytes_per_cycle=busbw,
        ))
    return points


def format_points(points: Sequence[BandwidthPoint]) -> str:
    """An nccl-tests style table (bandwidths in bytes/cycle = GB/s at the
    default 1 GHz clock)."""
    header = (f"{'size (B)':>12} {'latency (cyc)':>16} "
              f"{'algbw (B/cyc)':>15} {'busbw (B/cyc)':>15}")
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.size_bytes:>12,.0f} {p.latency_cycles:>16,.1f} "
            f"{p.algbw_bytes_per_cycle:>15.2f} {p.busbw_bytes_per_cycle:>15.2f}"
        )
    return "\n".join(lines)
