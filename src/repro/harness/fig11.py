"""Fig. 11 — asymmetric hierarchical topology on 64 modules (4 NAM x 16 NAP).

Setup (Sec. V-C): a 4x4x4 torus with two unidirectional rings inside each
package and four bidirectional rings across packages (two per inter
dimension).  Three systems are compared:

* symmetric — local links equal the 25 GB/s inter-package links,
* asymmetric + baseline — 8x local bandwidth, three-phase per-dimension
  ring all-reduce,
* asymmetric + enhanced — the four-phase algorithm (local reduce-scatter,
  inter-package all-reduce on 1/4 of the data, local all-gather).

Expected shape: asymmetric beats symmetric substantially; the enhanced
algorithm improves further by cutting inter-package volume 4x.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence

from repro.collectives.types import CollectiveOp
from repro.config.parameters import CollectiveAlgorithm, TorusShape
from repro.harness.runners import (
    SWEEP_SIZES,
    CollectiveResult,
    sweep_collective,
    torus_platform,
)

SHAPE = TorusShape(local=4, horizontal=4, vertical=4)


@dataclass
class Figure11Result:
    collective: CollectiveOp
    symmetric: list[CollectiveResult]
    asymmetric_baseline: list[CollectiveResult]
    asymmetric_enhanced: list[CollectiveResult]

    @property
    def complete(self) -> bool:
        """False when a supervised run quarantined a point (gap rows)."""
        return all(r is not None for r in (self.symmetric
                                           + self.asymmetric_baseline
                                           + self.asymmetric_enhanced))

    def rows(self) -> list[dict[str, float]]:
        out = []
        for s, ab, ae in zip(self.symmetric, self.asymmetric_baseline,
                             self.asymmetric_enhanced):
            # Quarantined points are explicit None gaps; ratios need both
            # of their operands present.
            present = next((r for r in (s, ab, ae) if r is not None), None)
            out.append({
                "size_bytes": present.size_bytes if present is not None else None,
                "symmetric_cycles": s.duration_cycles if s is not None else None,
                "asym_baseline_cycles": ab.duration_cycles if ab is not None else None,
                "asym_enhanced_cycles": ae.duration_cycles if ae is not None else None,
                "asym_speedup": (s.duration_cycles / ab.duration_cycles
                                 if s is not None and ab is not None else None),
                "enhanced_speedup": (ab.duration_cycles / ae.duration_cycles
                                     if ab is not None and ae is not None else None),
            })
        return out


def _platform(symmetric: bool, algorithm: CollectiveAlgorithm):
    return torus_platform(
        SHAPE,
        algorithm=algorithm,
        symmetric=symmetric,
        local_rings=2,
        horizontal_rings=2,
        vertical_rings=2,
    )


def run(
    sizes: Sequence[float] = SWEEP_SIZES,
    collective: CollectiveOp = CollectiveOp.ALL_REDUCE,
) -> Figure11Result:
    # functools.partial over the module-level builder (not a lambda) so
    # the points stay picklable for process-parallel execution.
    return Figure11Result(
        collective=collective,
        symmetric=sweep_collective(
            functools.partial(_platform, True, CollectiveAlgorithm.BASELINE),
            collective, sizes),
        asymmetric_baseline=sweep_collective(
            functools.partial(_platform, False, CollectiveAlgorithm.BASELINE),
            collective, sizes),
        asymmetric_enhanced=sweep_collective(
            functools.partial(_platform, False, CollectiveAlgorithm.ENHANCED),
            collective, sizes),
    )


def run_both(sizes: Sequence[float] = SWEEP_SIZES) -> dict[str, Figure11Result]:
    return {
        "all_reduce": run(sizes, CollectiveOp.ALL_REDUCE),
        "all_to_all": run(sizes, CollectiveOp.ALL_TO_ALL),
    }
