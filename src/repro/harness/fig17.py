"""Fig. 17 — ResNet-50 exposed-communication ratio vs. system size.

Setup (Sec. V-F): data-parallel ResNet-50 with the 4-phase all-reduce as
the torus grows from 2x2x2 (8 NPUs) to 2x8x8 (128 NPUs).

Expected shape: the exposed-communication share of busy time grows
monotonically with system size (the paper reports 4.1% at 8 NPUs rising
to 25.2% at 128 — larger rings mean more steps and more volume while
per-NPU compute stays constant under data parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config.parameters import TorusShape
from repro.harness.fig14 import run as run_resnet

SHAPES = (
    TorusShape(2, 2, 2),
    TorusShape(2, 4, 2),
    TorusShape(2, 4, 4),
    TorusShape(2, 8, 4),
    TorusShape(2, 8, 8),
)


@dataclass
class Figure17Result:
    rows: list[dict[str, float]]


def run(shapes: Sequence[TorusShape] = SHAPES, num_iterations: int = 2) -> Figure17Result:
    rows = []
    for shape in shapes:
        result = run_resnet(shape=shape, num_iterations=num_iterations)
        report = result.report
        rows.append({
            "shape": str(shape),
            "npus": shape.num_npus,
            "compute_cycles": report.total_compute_cycles,
            "exposed_cycles": report.total_exposed_cycles,
            "exposed_ratio": report.exposed_comm_ratio,
        })
    return Figure17Result(rows=rows)
