"""Fig. 9 — 1D topology: alltoall vs. Torus for all-to-all and all-reduce.

Setup (Sec. V-A): 8 packages, one NAM each.  The alltoall topology gives
each NAM one link per peer through 7 global switches (one of the 8 links
unused); the torus is a 1D ring with four links per peer NAM (four
bidirectional rings).  Both sweep the collective payload size.

Expected shape: the alltoall topology always wins the all-to-all
collective, with the gap shrinking as messages grow; for all-reduce the
torus overtakes at large messages (it uses all 8 links and pipelines
chunks across rings, while alltoall drives only 7 links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.collectives.types import CollectiveOp
from repro.config.parameters import AllToAllShape, TorusShape
from repro.harness.runners import (
    SWEEP_SIZES,
    CollectiveResult,
    alltoall_platform,
    torus_platform,
)
from repro.parallel import RunPoint, default_executor

PACKAGES = 8


@dataclass
class Figure9Result:
    collective: CollectiveOp
    alltoall: list[CollectiveResult]
    torus: list[CollectiveResult]

    @property
    def complete(self) -> bool:
        """False when a supervised run quarantined a point (gap rows)."""
        return all(r is not None for r in self.alltoall + self.torus)

    def rows(self) -> list[dict[str, float]]:
        """One row per size; quarantined points render as explicit
        ``None`` gaps (partial figure) instead of aborting the panel."""
        out = []
        for a, t in zip(self.alltoall, self.torus):
            present = a if a is not None else t
            out.append({
                "size_bytes": present.size_bytes if present is not None else None,
                "alltoall_cycles": a.duration_cycles if a is not None else None,
                "torus_cycles": t.duration_cycles if t is not None else None,
                "torus_over_alltoall": (t.duration_cycles / a.duration_cycles
                                        if a is not None and t is not None
                                        else None),
            })
        return out


def _alltoall():
    """1x8 alltoall: 7 switches so every peer pair has a dedicated link."""
    return alltoall_platform(
        AllToAllShape(local=1, packages=PACKAGES),
        global_switches=PACKAGES - 1,
    )


def _torus():
    """1x8x1 ring: four bidirectional rings = four links per peer NAM."""
    return torus_platform(
        TorusShape(local=1, horizontal=PACKAGES, vertical=1),
        horizontal_rings=4,
    )


def _points(sizes: Sequence[float], collective: CollectiveOp) -> list[RunPoint]:
    """Both topologies' sweep points, alltoall block first then torus."""
    return [RunPoint(builder=builder, op=collective, size_bytes=float(size))
            for builder in (_alltoall, _torus) for size in sizes]


def _split(collective: CollectiveOp, sizes: Sequence[float],
           results: list[CollectiveResult]) -> Figure9Result:
    n = len(sizes)
    return Figure9Result(collective=collective,
                         alltoall=results[:n], torus=results[n:])


def run(sizes: Sequence[float] = SWEEP_SIZES,
        collective: CollectiveOp = CollectiveOp.ALL_REDUCE) -> Figure9Result:
    """Run one of the two Fig. 9 panels ((a) all-to-all, (b) all-reduce).

    Both topologies' points go to the executor as one batch so ``--jobs``
    overlaps them instead of parallelizing each 4-point sweep alone.
    """
    sizes = list(sizes)
    results = default_executor().run_points(_points(sizes, collective))
    return _split(collective, sizes, results)


def schedule_probes(size_bytes: float = 64 * 1024) -> list:
    """Schedule-perturbation probes for the Fig. 9 setup.

    Small payloads (one sweep point per topology x collective) keep
    ``astra-repro analyze --schedule`` runs short; the race detector
    re-runs each probe once per trial.
    """
    from repro.sanitize.schedule import CollectiveProbe

    return [
        CollectiveProbe(
            label=f"fig09/{name}/{op.value}",
            platform_builder=builder,
            op=op,
            size_bytes=float(size_bytes),
        )
        for name, builder in (("alltoall", _alltoall), ("torus", _torus))
        for op in (CollectiveOp.ALL_TO_ALL, CollectiveOp.ALL_REDUCE)
    ]


def run_both(sizes: Sequence[float] = SWEEP_SIZES) -> dict[str, Figure9Result]:
    """Both panels, all 2 collectives x 2 topologies x sizes in one batch."""
    sizes = list(sizes)
    points = (_points(sizes, CollectiveOp.ALL_TO_ALL)
              + _points(sizes, CollectiveOp.ALL_REDUCE))
    results = default_executor().run_points(points)
    half = 2 * len(sizes)
    return {
        "all_to_all": _split(CollectiveOp.ALL_TO_ALL, sizes, results[:half]),
        "all_reduce": _split(CollectiveOp.ALL_REDUCE, sizes, results[half:]),
    }
