"""Fig. 9 — 1D topology: alltoall vs. Torus for all-to-all and all-reduce.

Setup (Sec. V-A): 8 packages, one NAM each.  The alltoall topology gives
each NAM one link per peer through 7 global switches (one of the 8 links
unused); the torus is a 1D ring with four links per peer NAM (four
bidirectional rings).  Both sweep the collective payload size.

Expected shape: the alltoall topology always wins the all-to-all
collective, with the gap shrinking as messages grow; for all-reduce the
torus overtakes at large messages (it uses all 8 links and pipelines
chunks across rings, while alltoall drives only 7 links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.collectives.types import CollectiveOp
from repro.config.parameters import AllToAllShape, TorusShape
from repro.harness.runners import (
    SWEEP_SIZES,
    CollectiveResult,
    alltoall_platform,
    sweep_collective,
    torus_platform,
)

PACKAGES = 8


@dataclass
class Figure9Result:
    collective: CollectiveOp
    alltoall: list[CollectiveResult]
    torus: list[CollectiveResult]

    def rows(self) -> list[dict[str, float]]:
        out = []
        for a, t in zip(self.alltoall, self.torus):
            out.append({
                "size_bytes": a.size_bytes,
                "alltoall_cycles": a.duration_cycles,
                "torus_cycles": t.duration_cycles,
                "torus_over_alltoall": t.duration_cycles / a.duration_cycles,
            })
        return out


def _alltoall():
    """1x8 alltoall: 7 switches so every peer pair has a dedicated link."""
    return alltoall_platform(
        AllToAllShape(local=1, packages=PACKAGES),
        global_switches=PACKAGES - 1,
    )


def _torus():
    """1x8x1 ring: four bidirectional rings = four links per peer NAM."""
    return torus_platform(
        TorusShape(local=1, horizontal=PACKAGES, vertical=1),
        horizontal_rings=4,
    )


def run(sizes: Sequence[float] = SWEEP_SIZES,
        collective: CollectiveOp = CollectiveOp.ALL_REDUCE) -> Figure9Result:
    """Run one of the two Fig. 9 panels ((a) all-to-all, (b) all-reduce)."""
    return Figure9Result(
        collective=collective,
        alltoall=sweep_collective(_alltoall, collective, sizes),
        torus=sweep_collective(_torus, collective, sizes),
    )


def run_both(sizes: Sequence[float] = SWEEP_SIZES) -> dict[str, Figure9Result]:
    return {
        "all_to_all": run(sizes, CollectiveOp.ALL_TO_ALL),
        "all_reduce": run(sizes, CollectiveOp.ALL_REDUCE),
    }
