"""Fig. 15 — ResNet-50 layer-wise compute and exposed communication.

Same simulation as Fig. 14 (data-parallel ResNet-50 on a 2x4x4 torus,
LIFO, 4-phase all-reduce); this module re-exports the shared runner and
adds the Fig. 15 view: per-layer compute vs exposed-communication rows.
"""

from __future__ import annotations

from repro.analysis.report import layer_rows
from repro.harness.fig14 import SHAPE, ResnetRun, run  # noqa: F401


def exposed_rows(result: ResnetRun) -> list[dict[str, float]]:
    """The Fig. 15 bars: compute, raw and exposed comm per layer."""
    return [{
        "layer": r.name,
        "compute_cycles": r.compute_cycles,
        "raw_comm_cycles": r.total_comm_cycles,
        "exposed_cycles": r.exposed_cycles,
    } for r in layer_rows(result.report)]
