"""Fig. 13 — Transformer layer-wise raw communication time.

Setup (Sec. V-E): two training iterations of the Transformer on a 2x2x2
torus, hybrid parallelism (data-parallel across local and horizontal,
model-parallel across vertical), LIFO scheduling, local minibatch 32.

Expected shape: the six encoder layers show near-uniform communication
time (they are structurally identical and the hybrid dependencies
serialize their activation/input-gradient exchanges); the embedding layer
has no communication.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import LayerRow, layer_rows
from repro.config.parameters import CollectiveAlgorithm, SchedulingPolicy, TorusShape
from repro.harness.runners import run_training, torus_platform
from repro.models.transformer import transformer
from repro.workload.training_loop import TrainingReport

SHAPE = TorusShape(2, 2, 2)


@dataclass
class Figure13Result:
    report: TrainingReport

    def rows(self) -> list[LayerRow]:
        return layer_rows(self.report)


def run(num_iterations: int = 2) -> Figure13Result:
    platform = torus_platform(
        SHAPE,
        algorithm=CollectiveAlgorithm.ENHANCED,
        scheduling_policy=SchedulingPolicy.LIFO,
        horizontal_rings=1,
        vertical_rings=1,
    )
    model = transformer(
        compute=platform.config.compute,
        minibatch=32,
        model_parallel_degree=SHAPE.vertical,
    )
    report, _system = run_training(model, platform, num_iterations=num_iterations)
    return Figure13Result(report=report)
