"""Fig. 18 — ResNet-50 exposed communication vs. NPU compute power.

Setup (Sec. V-F): data-parallel ResNet-50 on a 2x4x4 torus while the
NPU's effective compute power scales from 0.5x to 4x of the baseline.

Expected shape: at 0.5x the collectives hide completely behind compute
(<1% exposed); as compute accelerates the fixed-speed network is exposed
— the paper reports 63.9% of latency from communication at 4x, the
diminishing-returns regime for faster NPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.harness.fig14 import run as run_resnet

SCALES = (0.5, 1.0, 2.0, 4.0)


@dataclass
class Figure18Result:
    rows: list[dict[str, float]]


def run(scales: Sequence[float] = SCALES, num_iterations: int = 2) -> Figure18Result:
    rows = []
    for scale in scales:
        result = run_resnet(compute_scale=scale, num_iterations=num_iterations)
        report = result.report
        rows.append({
            "compute_scale": scale,
            "compute_cycles": report.total_compute_cycles,
            "exposed_cycles": report.total_exposed_cycles,
            "exposed_ratio": report.exposed_comm_ratio,
        })
    return Figure18Result(rows=rows)
