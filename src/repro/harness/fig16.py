"""Fig. 16 — ResNet-50 queue/network breakdown, FIFO vs LIFO.

Re-exports the shared ResNet runner's scheduling-policy comparison; the
breakdowns are on each run's ``breakdown`` attribute (Queue P0-P4 /
Network P1-P4 rows via ``breakdown.rows()``).
"""

from __future__ import annotations

from repro.harness.fig14 import ResnetRun, run, run_fifo_vs_lifo  # noqa: F401


def breakdown_rows(runs: dict[str, ResnetRun]) -> dict[str, list[dict]]:
    """Fig. 16's per-policy phase-delay tables."""
    return {name: run.breakdown.rows() for name, run in runs.items()}
