"""Per-figure experiment runners regenerating the paper's evaluation."""

from repro.harness import (
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
)
from repro.harness.bandwidth_test import (
    BandwidthPoint,
    format_points,
    measure,
    traffic_factor,
)
from repro.harness.sweep import SweepResult, sweep
from repro.harness.runners import (
    SWEEP_SIZES,
    CollectiveResult,
    PlatformSpec,
    alltoall_platform,
    run_collective,
    run_training,
    sweep_collective,
    torus_platform,
)

__all__ = [
    "BandwidthPoint",
    "CollectiveResult",
    "SweepResult",
    "format_points",
    "measure",
    "sweep",
    "traffic_factor",
    "PlatformSpec",
    "SWEEP_SIZES",
    "alltoall_platform",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "run_collective",
    "run_training",
    "sweep_collective",
    "torus_platform",
]
