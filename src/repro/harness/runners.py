"""Shared experiment runners used by the per-figure harnesses and benches.

Two entry points:

* :func:`run_collective` — one collective set (chunked and scheduled
  exactly as in a training run) on a freshly built platform; returns the
  set duration and the delay breakdown.  Used by the Fig. 9-12 studies.
* :func:`run_training` — a full multi-iteration training simulation;
  returns the :class:`TrainingReport`.  Used by the Fig. 13-18 studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.collectives.types import CollectiveOp
from repro.config.parameters import (
    AllToAllShape,
    CollectiveAlgorithm,
    SchedulingPolicy,
    SimulationConfig,
    SystemConfig,
    TorusShape,
)
from repro.config.presets import (
    paper_compute_config,
    paper_network_config,
    paper_simulation_config,
    symmetric_network_config,
)
from repro.errors import ConfigError
from repro.events.engine import EventQueue
from repro.system.stats import DelayBreakdown
from repro.system.sys_layer import System
from repro.topology.logical import (
    LogicalTopology,
    build_alltoall_topology,
    build_torus_topology,
)
from repro.workload.model import DNNModel
from repro.workload.training_loop import TrainingLoop, TrainingReport

#: Collective-sweep message sizes (bytes): the Fig. 9-11 x-axes.
SWEEP_SIZES = (64 * 1024, 512 * 1024, 4 * 1024 * 1024, 32 * 1024 * 1024)

#: A generous event cap for the workload runs — purely a livelock guard.
MAX_EVENTS = 400_000_000


@dataclass
class CollectiveResult:
    """Outcome of one collective run."""

    label: str
    op: CollectiveOp
    size_bytes: float
    duration_cycles: float
    breakdown: DelayBreakdown
    num_npus: int
    #: repro.system.transport.TransportStats when the run used the
    #: reliable transport; None otherwise.
    transport_stats: Optional[object] = None
    #: The system the run executed on (checkpoint/watchdog state lives on
    #: ``system.resilience``); kept out of repr, it is not a result value.
    system: Optional[System] = field(default=None, repr=False)


@dataclass
class PlatformSpec:
    """Everything needed to build one simulated platform."""

    name: str
    topology_builder: Callable[[SystemConfig], LogicalTopology]
    config: SimulationConfig
    #: Optional repro.network.fault_schedule.FaultSchedule installed into
    #: every system built from this spec.
    fault_schedule: Optional[object] = None
    #: Optional repro.resilience.monitor.ResilienceConfig: checkpointing,
    #: stall watchdog, and/or resume verification for every system built
    #: from this spec (docs/RESILIENCE.md).
    resilience: Optional[object] = None
    #: Optional backend constructor ``(events, network, sanitizer) ->
    #: NetworkBackend`` selecting a non-default backend (the detailed
    #: flit-level one); None builds the fast analytical backend.
    backend_factory: Optional[Callable] = None

    def build_system(self, sanitize: bool = False,
                     events: Optional[EventQueue] = None) -> System:
        """Build the system; ``sanitize=True`` attaches a fresh
        :class:`repro.sanitize.runtime.RuntimeSanitizer` (runtime invariant
        checking at a small instrumentation cost).  ``events`` supplies a
        caller-built event queue — the schedule-perturbation detector
        (:mod:`repro.sanitize.schedule`) passes queues with a tie-break
        hook or tracing installed; it wins over the sanitizer's queue."""
        topology = self.topology_builder(self.config.system)
        sanitizer = None
        if sanitize:
            from repro.sanitize.runtime import RuntimeSanitizer

            sanitizer = RuntimeSanitizer()
        return System(topology, self.config, events=events,
                      sanitizer=sanitizer,
                      fault_schedule=self.fault_schedule,
                      resilience=self.resilience,
                      backend_factory=self.backend_factory)


def torus_platform(
    shape: TorusShape,
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.BASELINE,
    symmetric: bool = False,
    local_rings: int = 2,
    horizontal_rings: int = 2,
    vertical_rings: int = 2,
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.LIFO,
    compute_scale: float = 1.0,
    preferred_set_splits: int = 16,
) -> PlatformSpec:
    """A hierarchical torus platform with Table IV parameters.

    ``symmetric=True`` equalizes every link to the inter-package class
    (the Sec. V-A/V-B "links with same BW" setting).
    """
    network = symmetric_network_config() if symmetric else paper_network_config()
    base = paper_simulation_config(
        algorithm=algorithm,
        scheduling_policy=scheduling_policy,
        compute_scale=compute_scale,
        preferred_set_splits=preferred_set_splits,
    )
    system = SystemConfig(
        topology=base.system.topology,
        algorithm=algorithm,
        scheduling_policy=scheduling_policy,
        local_rings=local_rings,
        horizontal_rings=horizontal_rings,
        vertical_rings=vertical_rings,
        global_switches=base.system.global_switches,
        endpoint_delay_cycles=base.system.endpoint_delay_cycles,
        preferred_set_splits=preferred_set_splits,
        dispatch_threshold=base.system.dispatch_threshold,
        dispatch_batch=base.system.dispatch_batch,
    )
    config = SimulationConfig(
        system=system,
        network=network,
        compute=paper_compute_config(compute_scale=compute_scale),
    )
    return PlatformSpec(
        name=f"torus-{shape}",
        topology_builder=lambda sys_cfg: build_torus_topology(shape, network, sys_cfg),
        config=config,
    )


def alltoall_platform(
    shape: AllToAllShape,
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.BASELINE,
    symmetric: bool = False,
    local_rings: int = 2,
    global_switches: int = 2,
    preferred_set_splits: int = 16,
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.LIFO,
) -> PlatformSpec:
    """A hierarchical alltoall platform with Table IV parameters."""
    network = symmetric_network_config() if symmetric else paper_network_config()
    base = paper_simulation_config(algorithm=algorithm,
                                   scheduling_policy=scheduling_policy,
                                   preferred_set_splits=preferred_set_splits)
    system = SystemConfig(
        topology=base.system.topology,
        algorithm=algorithm,
        scheduling_policy=scheduling_policy,
        local_rings=local_rings,
        global_switches=global_switches,
        endpoint_delay_cycles=base.system.endpoint_delay_cycles,
        preferred_set_splits=preferred_set_splits,
        dispatch_threshold=base.system.dispatch_threshold,
        dispatch_batch=base.system.dispatch_batch,
    )
    config = SimulationConfig(system=system, network=network)
    return PlatformSpec(
        name=f"alltoall-{shape}",
        topology_builder=lambda sys_cfg: build_alltoall_topology(shape, network, sys_cfg),
        config=config,
    )


def run_collective(
    platform: PlatformSpec,
    op: CollectiveOp,
    size_bytes: float,
    max_events: Optional[int] = MAX_EVENTS,
    sanitize: bool = False,
    events: Optional[EventQueue] = None,
    on_system: Optional[Callable[[System], None]] = None,
) -> CollectiveResult:
    """Run one chunked collective to completion on a fresh platform.

    ``on_system`` is called with the freshly built system before the
    first event fires — observers that need system state (the service
    progress writer samples :meth:`System.progress_vector`) bind here
    without the runner growing observer-specific parameters.
    """
    system = platform.build_system(sanitize=sanitize, events=events)
    if on_system is not None:
        on_system(system)
    collective = system.request_collective(op, size_bytes, name=f"{op.value}")
    system.run_until_idle(max_events=max_events)
    if not collective.done:
        raise ConfigError(f"collective never completed on {platform.name}")
    return CollectiveResult(
        label=platform.name,
        op=op,
        size_bytes=size_bytes,
        duration_cycles=collective.duration_cycles,
        breakdown=system.breakdown,
        num_npus=system.topology.num_npus,
        transport_stats=system.transport_stats(),
        system=system,
    )


def sweep_collective(
    platform_builder: Callable[[], PlatformSpec],
    op: CollectiveOp,
    sizes: Sequence[float] = SWEEP_SIZES,
    executor: Optional[object] = None,
) -> list[CollectiveResult]:
    """Run ``op`` across message sizes, one fresh platform per point.

    Points go through a :class:`repro.parallel.ParallelExecutor` — the
    one passed in, else the process-wide default (serial and uncached
    unless the CLI installed one via ``--jobs``/``--cache-dir``).  Results
    come back in size order regardless of job count, bit-identical to the
    serial loop this used to be.

    Under a :class:`repro.parallel.SupervisedExecutor` a quarantined
    point comes back as an explicit ``None`` gap instead of aborting the
    sweep; :func:`sweep_collective_outcomes` exposes the full typed
    outcome per point.
    """
    from repro.parallel import RunPoint, default_executor

    ex = executor if executor is not None else default_executor()
    points = [RunPoint(builder=platform_builder, op=op, size_bytes=float(size))
              for size in sizes]
    return ex.run_points(points)


def sweep_collective_outcomes(
    platform_builder: Callable[[], PlatformSpec],
    op: CollectiveOp,
    sizes: Sequence[float] = SWEEP_SIZES,
    executor: Optional[object] = None,
) -> list:
    """:func:`sweep_collective`, returning typed per-point outcomes.

    Each element is a :class:`repro.parallel.PointOutcome`
    (ok / retried / timeout / crashed / quarantined) in size order; on a
    plain executor every outcome is OK (failures raise, as always).
    """
    from repro.parallel import RunPoint, default_executor

    ex = executor if executor is not None else default_executor()
    points = [RunPoint(builder=platform_builder, op=op, size_bytes=float(size))
              for size in sizes]
    return ex.run_outcomes(points)


def run_training(
    model: DNNModel,
    platform: PlatformSpec,
    num_iterations: int = 2,
    max_events: Optional[int] = MAX_EVENTS,
    sanitize: bool = False,
) -> tuple[TrainingReport, System]:
    """Run a training workload; returns the report and the system (for
    its delay breakdown)."""
    system = platform.build_system(sanitize=sanitize)
    report = TrainingLoop(system, model, num_iterations=num_iterations).run(
        max_events=max_events
    )
    return report, system
