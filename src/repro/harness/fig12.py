"""Fig. 12 — scaling the Torus from 8 to 64 modules, with the queue and
network delay breakdown of the 4-phase all-reduce.

Setup (Sec. V-D): asymmetric tori 2x2x2, 2x4x2, 2x4x4 and 2x4x8 running
the enhanced (4-phase) all-reduce.  Reported per shape: total
communication time (Fig. 12a) and the mean Queue P0-P4 / Network P1-P4
delays (Fig. 12b).

Expected shape: time grows with module count, but slows between 16
(2x4x2) and 32 (2x4x4) modules — the bottleneck ring size stays 4, only
shifting from horizontal to vertical (visible as Queue P2 becoming
dominant at 2x4x4) — then jumps again at 2x4x8 (a new ring of 8).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence

from repro.collectives.types import CollectiveOp
from repro.config.parameters import CollectiveAlgorithm, TorusShape
from repro.config.units import MB
from repro.harness.runners import CollectiveResult, torus_platform

SHAPES = (
    TorusShape(2, 2, 2),
    TorusShape(2, 4, 2),
    TorusShape(2, 4, 4),
    TorusShape(2, 4, 8),
)

DEFAULT_SIZE = 2 * MB


@dataclass
class Figure12Result:
    size_bytes: float
    results: list[CollectiveResult]
    #: Shape labels in point order — lets gap rows stay attributable to
    #: their shape when a supervised run quarantined the point.
    shapes: Sequence[str] = ()

    @property
    def complete(self) -> bool:
        """False when a supervised run quarantined a point (gap rows)."""
        return all(r is not None for r in self.results)

    def _shape_label(self, i: int) -> str:
        if i < len(self.shapes):
            return str(self.shapes[i])
        return f"point[{i}]"

    def total_rows(self) -> list[dict[str, float]]:
        """Fig. 12a: total communication time per shape; quarantined
        points render as explicit ``None`` gaps."""
        rows = []
        for i, r in enumerate(self.results):
            if r is None:
                rows.append({"shape": self._shape_label(i),
                             "modules": None, "cycles": None})
            else:
                rows.append({"shape": r.label, "modules": r.num_npus,
                             "cycles": r.duration_cycles})
        return rows

    def breakdown_rows(self) -> dict[str, list[dict[str, float]]]:
        """Fig. 12b: queue/network delays per phase, per shape (gaps
        omitted — there is no breakdown to render for a poison point)."""
        return {r.label: r.breakdown.rows()
                for r in self.results if r is not None}


def _platform(shape: TorusShape):
    return torus_platform(
        shape,
        algorithm=CollectiveAlgorithm.ENHANCED,
        local_rings=2,
        horizontal_rings=2,
        vertical_rings=2,
    )


def schedule_probes(size_bytes: float = 256 * 1024,
                    shapes: Sequence[TorusShape] = SHAPES[:2]) -> list:
    """Schedule-perturbation probes for the Fig. 12 setup.

    Defaults to the two smallest tori (2x2x2, 2x4x2) with a reduced
    payload — the 4-phase enhanced all-reduce exercises every phase's
    queueing with far fewer events than the full 2 MB sweep.
    """
    from repro.sanitize.schedule import CollectiveProbe

    return [
        CollectiveProbe(
            label=f"fig12/torus-{shape}/all_reduce",
            platform_builder=functools.partial(_platform, shape),
            op=CollectiveOp.ALL_REDUCE,
            size_bytes=float(size_bytes),
        )
        for shape in shapes
    ]


def run(
    size_bytes: float = DEFAULT_SIZE,
    shapes: Sequence[TorusShape] = SHAPES,
) -> Figure12Result:
    from repro.parallel import RunPoint, default_executor

    points = [
        RunPoint(builder=functools.partial(_platform, shape),
                 op=CollectiveOp.ALL_REDUCE, size_bytes=float(size_bytes))
        for shape in shapes
    ]
    return Figure12Result(size_bytes=size_bytes,
                          results=default_executor().run_points(points),
                          shapes=[f"torus-{shape}" for shape in shapes])
