"""Generic parameter-sweep utility for design-space exploration.

Wraps the "build platform -> run -> collect metric" loop every study in
Sec. V repeats, producing a :class:`ComparisonTable` plus raw rows ready
for :func:`repro.analysis.export.rows_to_csv`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.compare import ComparisonTable
from repro.errors import ReproError


@dataclass
class SweepResult:
    """Rows plus a speedup table for one sweep."""

    parameter: str
    metric: str
    rows: list[dict] = field(default_factory=list)
    #: Points a supervised executor quarantined instead of measuring:
    #: ``{parameter: value, "status": ..., "failure_class": ...}`` per
    #: gap, so a partial sweep renders its holes explicitly.
    gaps: list[dict] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.gaps

    def table(self, baseline: str | None = None) -> ComparisonTable:
        table = ComparisonTable(metric=self.metric)
        for row in self.rows:
            table.add(str(row[self.parameter]), row[self.metric])
        return table

    def values(self) -> list[float]:
        return [row[self.metric] for row in self.rows]

    def argmin(self):
        if not self.rows:
            raise ReproError("sweep produced no rows")
        best = min(self.rows, key=lambda r: r[self.metric])
        return best[self.parameter]


def sweep(
    parameter: str,
    values: Sequence,
    run: Callable[[object], float],
    metric: str = "cycles",
    executor=None,
) -> SweepResult:
    """Evaluate ``run(value)`` for every value, collecting ``metric``.

    When an ``executor`` (:class:`repro.parallel.ParallelExecutor`) is
    given, points fan out through its ordered :meth:`map` — a ``run``
    that is not picklable (e.g. a closure) transparently falls back to
    the serial loop, with identical results either way.  A
    :class:`repro.parallel.SupervisedExecutor` routes through its
    supervised map instead: a crashed/hung/poison point becomes an entry
    in ``SweepResult.gaps`` and the rest of the sweep completes.

    >>> result = sweep("chunks", [1, 2], lambda c: 100.0 / c)
    >>> result.argmin()
    2
    """
    if not values:
        raise ReproError("sweep needs at least one value")
    result = SweepResult(parameter=parameter, metric=metric)
    if executor is not None and hasattr(executor, "map_outcomes"):
        for value, outcome in zip(values, executor.map_outcomes(run, list(values))):
            if outcome.ok and outcome.result is not None:
                result.rows.append({parameter: value,
                                    metric: float(outcome.result)})
            else:
                result.gaps.append({parameter: value,
                                    "status": outcome.status.value,
                                    "failure_class": outcome.failure_class})
        return result
    if executor is not None:
        measured_values = executor.map(run, list(values))
    else:
        measured_values = [run(value) for value in values]
    for value, measured in zip(values, measured_values):
        if measured is None:
            raise ReproError(f"run({value!r}) returned no metric")
        result.rows.append({parameter: value, metric: float(measured)})
    return result
