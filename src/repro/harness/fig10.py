"""Fig. 10 — all-reduce on 2D/3D Torus shapes at 64 packages.

Setup (Sec. V-B): 64 modules with symmetric links (every link is the
25 GB/s inter-package class) running the baseline algorithm on
1x64x1, 1x8x8, 2x8x4 and 4x4x4 tori.

Expected shape: 1x8x8 beats 1x64x1 decisively (14 hops vs 63 beats the
extra volume 28/8 N vs 126/64 N); 2x8x4 is worse than 1x8x8 (more volume,
same bottleneck ring of 8); 4x4x4 beats 2x8x4 and is the best for small
messages, while 1x8x8 wins again at large (>= ~4 MB) messages where its
lower volume (28/8 N vs 36/8 N) dominates.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence

from repro.collectives.types import CollectiveOp
from repro.config.parameters import TorusShape
from repro.harness.runners import (
    SWEEP_SIZES,
    CollectiveResult,
    sweep_collective,
    torus_platform,
)

SHAPES = (
    TorusShape(1, 64, 1),
    TorusShape(1, 8, 8),
    TorusShape(2, 8, 4),
    TorusShape(4, 4, 4),
)


@dataclass
class Figure10Result:
    collective: CollectiveOp
    by_shape: dict[str, list[CollectiveResult]]

    @property
    def complete(self) -> bool:
        """False when a supervised run quarantined a point (gap rows)."""
        return all(r is not None
                   for results in self.by_shape.values() for r in results)

    def rows(self) -> list[dict[str, float]]:
        labels = list(self.by_shape)
        lengths = {len(v) for v in self.by_shape.values()}
        assert len(lengths) == 1
        out = []
        for i in range(min(lengths)):  # singleton by the assert; min() is order-free
            # Quarantined points are explicit None gaps; the row's size
            # comes from any shape that did complete at this index.
            present = next((self.by_shape[label][i] for label in labels
                            if self.by_shape[label][i] is not None), None)
            row: dict[str, float] = {
                "size_bytes": present.size_bytes if present is not None else None
            }
            for label in labels:
                result = self.by_shape[label][i]
                row[label] = result.duration_cycles if result is not None else None
            out.append(row)
        return out


def _platform(shape: TorusShape):
    """Symmetric-link torus; 1D shapes get four bidirectional rings so the
    per-NAM link count matches the multi-dimensional shapes."""
    one_dimensional = (shape.local == 1 and shape.vertical == 1)
    rings = 4 if one_dimensional else 2
    return torus_platform(
        shape,
        symmetric=True,
        horizontal_rings=rings,
        vertical_rings=2,
    )


def run(
    sizes: Sequence[float] = SWEEP_SIZES,
    collective: CollectiveOp = CollectiveOp.ALL_REDUCE,
    shapes: Sequence[TorusShape] = SHAPES,
) -> Figure10Result:
    # functools.partial over the module-level builder (not a lambda) so
    # the points stay picklable for process-parallel execution.
    by_shape = {
        str(shape): sweep_collective(
            functools.partial(_platform, shape), collective, sizes)
        for shape in shapes
    }
    return Figure10Result(collective=collective, by_shape=by_shape)
