"""Configuration serialization: SimulationConfig <-> JSON.

Lets an experiment pin its exact parameter set next to its results, and
re-run it later: the reproducibility leg of the harness.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any

from repro.config.parameters import (
    CollectiveAlgorithm,
    ComputeConfig,
    InjectionPolicy,
    LinkConfig,
    NetworkConfig,
    PacketRouting,
    SchedulingPolicy,
    SimulationConfig,
    SystemConfig,
    TopologyKind,
    TransportConfig,
)
from repro.config.units import Clock
from repro.errors import ConfigError

_ENUMS = {
    "topology": TopologyKind,
    "algorithm": CollectiveAlgorithm,
    "scheduling_policy": SchedulingPolicy,
    "packet_routing": PacketRouting,
    "injection_policy": InjectionPolicy,
}


def config_to_dict(config: SimulationConfig) -> dict[str, Any]:
    """A JSON-ready dictionary of the full parameter bundle."""
    out = asdict(config)
    system = out["system"]
    for key in _ENUMS:
        system[key] = getattr(config.system, key).value
    return out


def config_to_json(config: SimulationConfig, indent: int = 2) -> str:
    return json.dumps(config_to_dict(config), indent=indent)


def _link_from_dict(data: dict[str, Any]) -> LinkConfig:
    return LinkConfig(**data)


def config_from_dict(data: dict[str, Any]) -> SimulationConfig:
    """Rebuild a SimulationConfig; raises ConfigError on malformed input."""
    try:
        system_data = dict(data["system"])
        for key, enum_cls in _ENUMS.items():
            system_data[key] = enum_cls(system_data[key])
        if system_data.get("transport") is not None:
            system_data["transport"] = TransportConfig(**system_data["transport"])
        system = SystemConfig(**system_data)

        network = None
        if data.get("network") is not None:
            network_data = dict(data["network"])
            network_data["local_link"] = _link_from_dict(network_data["local_link"])
            network_data["package_link"] = _link_from_dict(
                network_data["package_link"])
            network = NetworkConfig(**network_data)

        compute = ComputeConfig(**data["compute"])
        clock = Clock(**data["clock"])
        return SimulationConfig(
            system=system,
            network=network,
            compute=compute,
            clock=clock,
            num_passes=data["num_passes"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed configuration data: {exc}") from exc


def config_from_json(text: str) -> SimulationConfig:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON: {exc}") from exc
    return config_from_dict(data)


def save_config(config: SimulationConfig, path) -> None:
    with open(path, "w") as f:
        f.write(config_to_json(config))


def load_config(path) -> SimulationConfig:
    with open(path) as f:
        return config_from_json(f.read())
