"""Simulator parameter dataclasses.

These mirror the ASTRA-SIM input parameters of Table III and the system
parameters of Table IV in the paper.  Everything is validated eagerly at
construction so that a bad configuration fails before a long simulation
starts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.config.units import Clock, DEFAULT_CLOCK
from repro.errors import ConfigError


class CollectiveAlgorithm(enum.Enum):
    """Table III #3: the multi-phase collective composition.

    ``BASELINE`` runs a full collective on every dimension in turn (e.g.
    ring all-reduce per dimension).  ``ENHANCED`` exploits asymmetric
    bandwidth: reduce-scatter on the local dimension, all-reduce on the
    inter-package dimensions, all-gather on the local dimension
    (Sec. III-D).
    """

    BASELINE = "baseline"
    ENHANCED = "enhanced"


class SchedulingPolicy(enum.Enum):
    """Table III #7: the order collectives are taken from the ready queue.

    ``PRIORITY`` is the extension Sec. III-E motivates: "further
    prioritizing and completing the first layers' communication operations
    before communication operations from later layers even though they
    were issued earlier" — chunks of lower-numbered layers always go
    first (FIFO among equals).
    """

    LIFO = "LIFO"
    FIFO = "FIFO"
    PRIORITY = "PRIORITY"


class TopologyKind(enum.Enum):
    """Table III #8: the logical topology family."""

    TORUS = "Torus"
    ALLTOALL = "AllToAll"


class PacketRouting(enum.Enum):
    """Table III #14: software routing relays at intermediate endpoints;
    hardware routing forwards inside the fabric without NPU involvement."""

    SOFTWARE = "software"
    HARDWARE = "hardware"


class InjectionPolicy(enum.Enum):
    """Table III #15: how aggressively messages are injected with hardware
    routing (aggressive = all at once, normal = paced)."""

    AGGRESSIVE = "aggressive"
    NORMAL = "normal"


@dataclass(frozen=True)
class LinkConfig:
    """One class of physical link (intra-package or inter-package).

    Bandwidth is quoted in GB/s as in Table IV; ``efficiency`` is the
    data-flit / (data+header-flit) ratio (Table III #17/#18), and
    ``packet_size_bytes`` bounds network-layer packetization.
    """

    bandwidth_gbps: float
    latency_cycles: float
    packet_size_bytes: int
    efficiency: float = 0.94
    #: Table IV "Message size": collective payloads move as fixed-size
    #: network messages; each quantum pays ``quantum_overhead_cycles`` of
    #: messaging-unit processing at the receiving endpoint (Table IV
    #: "Endpoint delay"), which serializes with the link stream under the
    #: software-routed / on-load endpoint design of Sec. V.  ``None``
    #: disables per-quantum overheads (idealized link).
    message_quantum_bytes: Optional[int] = 512
    quantum_overhead_cycles: float = 10.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ConfigError(f"link bandwidth must be positive: {self.bandwidth_gbps}")
        if self.latency_cycles < 0:
            raise ConfigError(f"link latency must be >= 0: {self.latency_cycles}")
        if self.packet_size_bytes <= 0:
            raise ConfigError(f"packet size must be positive: {self.packet_size_bytes}")
        if not 0 < self.efficiency <= 1:
            raise ConfigError(f"link efficiency must be in (0, 1]: {self.efficiency}")
        if self.message_quantum_bytes is not None and self.message_quantum_bytes <= 0:
            raise ConfigError(
                f"message quantum must be positive: {self.message_quantum_bytes}"
            )
        if self.quantum_overhead_cycles < 0:
            raise ConfigError("quantum overhead must be >= 0")

    def effective_bytes_per_cycle(self, clock: Clock = DEFAULT_CLOCK) -> float:
        """Usable payload bandwidth after header overhead (wire rate only;
        per-quantum endpoint processing is added by serialization_cycles)."""
        return clock.bandwidth_bytes_per_cycle(self.bandwidth_gbps) * self.efficiency

    def serialization_cycles(self, size_bytes: float, clock: Clock = DEFAULT_CLOCK) -> float:
        """Cycles to push ``size_bytes`` of payload through this link and
        its receiving messaging unit (per-quantum processing included)."""
        if size_bytes < 0:
            raise ConfigError(f"message size must be >= 0: {size_bytes}")
        wire = size_bytes / self.effective_bytes_per_cycle(clock)
        if self.message_quantum_bytes is None or size_bytes == 0:
            return wire
        quanta = -(-size_bytes // self.message_quantum_bytes)
        return wire + quanta * self.quantum_overhead_cycles

    def scaled(self, factor: float) -> "LinkConfig":
        """A copy with bandwidth multiplied by ``factor`` (asymmetry studies)."""
        if factor <= 0:
            raise ConfigError(f"bandwidth scale factor must be positive: {factor}")
        return replace(self, bandwidth_gbps=self.bandwidth_gbps * factor)


@dataclass(frozen=True)
class NetworkConfig:
    """Garnet-level parameters (Table III #17-#28) plus both link classes."""

    local_link: LinkConfig
    package_link: LinkConfig
    flit_width_bits: int = 1024
    router_latency_cycles: float = 1.0
    vcs_per_vnet: int = 50
    buffers_per_vc: int = 5000
    switch_latency_cycles: float = 1.0

    def __post_init__(self) -> None:
        if self.flit_width_bits <= 0:
            raise ConfigError(f"flit width must be positive: {self.flit_width_bits}")
        if self.router_latency_cycles < 0:
            raise ConfigError("router latency must be >= 0")
        if self.vcs_per_vnet <= 0:
            raise ConfigError("vcs_per_vnet must be positive")
        if self.buffers_per_vc <= 0:
            raise ConfigError("buffers_per_vc must be positive")

    @property
    def flit_width_bytes(self) -> int:
        return self.flit_width_bits // 8


@dataclass(frozen=True)
class TorusShape:
    """An M x N x K hierarchical torus (Sec. III-C terminology).

    ``local`` (M) counts NAMs per package on the intra-package rings;
    ``horizontal`` (N) and ``vertical`` (K) are inter-package ring sizes.
    A 1D ring of eight packages is ``TorusShape(1, 8, 1)``; the paper's
    headline asymmetric system is ``TorusShape(4, 4, 4)``.
    """

    local: int
    horizontal: int
    vertical: int

    def __post_init__(self) -> None:
        for name, value in (
            ("local", self.local),
            ("horizontal", self.horizontal),
            ("vertical", self.vertical),
        ):
            if value < 1:
                raise ConfigError(f"torus {name} dimension must be >= 1, got {value}")

    @property
    def num_npus(self) -> int:
        return self.local * self.horizontal * self.vertical

    @property
    def num_packages(self) -> int:
        return self.horizontal * self.vertical

    def __str__(self) -> str:
        return f"{self.local}x{self.horizontal}x{self.vertical}"


@dataclass(frozen=True)
class AllToAllShape:
    """An M x N hierarchical alltoall: M NAMs per package, N packages
    fully connected through global switches (Sec. III-C)."""

    local: int
    packages: int

    def __post_init__(self) -> None:
        if self.local < 1:
            raise ConfigError(f"alltoall local dimension must be >= 1, got {self.local}")
        if self.packages < 2:
            raise ConfigError(
                f"alltoall needs at least 2 packages, got {self.packages}"
            )

    @property
    def num_npus(self) -> int:
        return self.local * self.packages

    def __str__(self) -> str:
        return f"{self.local}x{self.packages}"


@dataclass(frozen=True)
class TransportConfig:
    """Reliable-transport knobs (see :mod:`repro.system.transport`).

    Per-message delivery timeout is ``timeout_cycles + timeout_per_byte *
    size_bytes``; retransmission backs off exponentially with seeded
    jitter.  Defaults are deliberately generous so that on a healthy
    network no timer ever fires before delivery and the simulated cycle
    counts are identical to a run without transport (asserted by
    ``benchmarks/bench_transport_overhead.py``).
    """

    timeout_cycles: float = 50_000.0
    timeout_per_byte: float = 4.0
    max_retries: int = 6
    backoff_base_cycles: float = 1_000.0
    backoff_factor: float = 2.0
    backoff_max_cycles: float = 200_000.0
    jitter: float = 0.1
    seed: int = 0
    #: Attempts lost to a *paused* endpoint are flow control, not path
    #: failure: they retry with backoff but are not charged against
    #: ``max_retries``.  This valve bounds how long a sender waits out a
    #: pause before giving up anyway (a node that never resumes must not
    #: retransmit forever on watchdog-less runs).
    max_paused_waits: int = 1_000

    def __post_init__(self) -> None:
        if self.timeout_cycles <= 0:
            raise ConfigError(f"timeout_cycles must be positive: {self.timeout_cycles}")
        if self.timeout_per_byte < 0:
            raise ConfigError(f"timeout_per_byte must be >= 0: {self.timeout_per_byte}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base_cycles < 0:
            raise ConfigError("backoff_base_cycles must be >= 0")
        if self.backoff_factor < 1:
            raise ConfigError(f"backoff_factor must be >= 1: {self.backoff_factor}")
        if self.backoff_max_cycles < self.backoff_base_cycles:
            raise ConfigError("backoff_max_cycles must be >= backoff_base_cycles")
        if not 0 <= self.jitter <= 1:
            raise ConfigError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.max_paused_waits < 0:
            raise ConfigError(
                f"max_paused_waits must be >= 0: {self.max_paused_waits}"
            )


@dataclass(frozen=True)
class SystemConfig:
    """System-layer parameters (Table III #3-#16)."""

    topology: TopologyKind = TopologyKind.TORUS
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.BASELINE
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.LIFO
    local_rings: int = 2
    vertical_rings: int = 2
    horizontal_rings: int = 2
    global_switches: int = 2
    endpoint_delay_cycles: float = 10.0
    packet_routing: PacketRouting = PacketRouting.SOFTWARE
    injection_policy: InjectionPolicy = InjectionPolicy.NORMAL
    preferred_set_splits: int = 16
    #: Dispatcher threshold T: issue new chunks when in-flight first-phase
    #: chunks drop below this (Sec. IV-B / Fig. 7).
    dispatch_threshold: int = 8
    #: Dispatcher issue count P: how many chunks to issue at once.
    dispatch_batch: int = 16
    #: Average cycles to reduce 1 KB of received data (Fig. 8 "local update").
    reduction_cycles_per_kb: float = 1.0
    #: Reliable transport (timeouts/retries); ``None`` sends raw —
    #: required for surviving fault schedules (docs/FAULTS.md).
    transport: Optional[TransportConfig] = None

    def __post_init__(self) -> None:
        for name in ("local_rings", "vertical_rings", "horizontal_rings", "global_switches"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.endpoint_delay_cycles < 0:
            raise ConfigError("endpoint delay must be >= 0")
        if self.preferred_set_splits < 1:
            raise ConfigError("preferred_set_splits must be >= 1")
        if self.dispatch_threshold < 1:
            raise ConfigError("dispatch_threshold must be >= 1")
        if self.dispatch_batch < 1:
            raise ConfigError("dispatch_batch must be >= 1")
        if self.reduction_cycles_per_kb < 0:
            raise ConfigError("reduction_cycles_per_kb must be >= 0")


@dataclass(frozen=True)
class ComputeConfig:
    """Parameters of the analytical NPU compute model (Sec. IV-A).

    The paper models a 256x256 TPU-like systolic array fed from HBM, with
    parameterized delays covering the non-GEMM parts of each layer and
    stalls from limited DRAM bandwidth.  ``compute_scale`` multiplies
    effective compute power for the Fig. 18 sensitivity study.
    """

    array_rows: int = 256
    array_cols: int = 256
    dram_bandwidth_gbps: float = 3600.0
    non_gemm_overhead_cycles: float = 1000.0
    compute_scale: float = 1.0
    bytes_per_element: int = 4
    #: NPU core clock relative to the 1 GHz network clock: TPU-class
    #: accelerators run their MXU around 1-2 GHz, while all simulator
    #: timing is in network cycles.  Array cycles are divided by this.
    clock_ghz: float = 2.0

    def __post_init__(self) -> None:
        if self.array_rows < 1 or self.array_cols < 1:
            raise ConfigError("systolic array dimensions must be >= 1")
        if self.clock_ghz <= 0:
            raise ConfigError("compute clock must be positive")
        if self.dram_bandwidth_gbps <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if self.non_gemm_overhead_cycles < 0:
            raise ConfigError("non-GEMM overhead must be >= 0")
        if self.compute_scale <= 0:
            raise ConfigError("compute_scale must be positive")
        if self.bytes_per_element < 1:
            raise ConfigError("bytes_per_element must be >= 1")

    def scaled(self, factor: float) -> "ComputeConfig":
        """A copy with ``compute_scale`` multiplied by ``factor``."""
        return replace(self, compute_scale=self.compute_scale * factor)


@dataclass(frozen=True)
class SimulationConfig:
    """The full bundle handed to a simulation run."""

    system: SystemConfig = field(default_factory=SystemConfig)
    network: Optional[NetworkConfig] = None
    compute: ComputeConfig = field(default_factory=ComputeConfig)
    clock: Clock = field(default_factory=Clock)
    num_passes: int = 1

    def __post_init__(self) -> None:
        if self.num_passes < 1:
            raise ConfigError(f"num_passes must be >= 1, got {self.num_passes}")
