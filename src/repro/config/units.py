"""Unit helpers: bytes, bandwidths and the cycle <-> seconds mapping.

The paper specifies link bandwidths in GB/s and latencies in cycles
(Table IV).  Internally the simulator works entirely in *cycles* and
*bytes*; this module owns the conversions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Decimal giga used for bandwidth figures quoted as "GB/s" in the paper.
GIGA = 1_000_000_000


@dataclass(frozen=True)
class Clock:
    """Maps cycles to seconds.

    The default 1 GHz clock makes one cycle equal one nanosecond, so a
    200 GB/s link moves 200 bytes per cycle — convenient for sanity checks.
    """

    frequency_hz: float = 1e9

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError(f"clock frequency must be positive, got {self.frequency_hz}")

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.frequency_hz

    def cycles_to_microseconds(self, cycles: float) -> float:
        return self.cycles_to_seconds(cycles) * 1e6

    def bandwidth_bytes_per_cycle(self, gigabytes_per_second: float) -> float:
        """Convert a GB/s figure (decimal giga, as quoted in the paper)."""
        if gigabytes_per_second <= 0:
            raise ConfigError(
                f"bandwidth must be positive, got {gigabytes_per_second} GB/s"
            )
        return gigabytes_per_second * GIGA / self.frequency_hz


DEFAULT_CLOCK = Clock()


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte count, used in reports (e.g. '4.0 MB')."""
    if num_bytes < 0:
        raise ConfigError(f"byte count must be non-negative, got {num_bytes}")
    for unit, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.1f} {unit}"
    return f"{num_bytes:.0f} B"
