"""Canonical configurations from the paper's evaluation (Table IV).

``paper_network_config`` reproduces the Table IV link parameters:

==================  ==========================
Intra-package       512 B packets, 200 GB/s, 90-cycle latency, 94% eff.
Inter-package       256 B packets, 25 GB/s, 200-cycle latency, 94% eff.
Flit width          1024 bits
Router latency      1 cycle
Endpoint delay      10 cycles
==================  ==========================

The symmetric variants (Sections V-A and V-B) use inter-package-class
links everywhere, which is what "links with same BW" means there.
"""

from __future__ import annotations

from repro.config.parameters import (
    CollectiveAlgorithm,
    ComputeConfig,
    LinkConfig,
    NetworkConfig,
    SchedulingPolicy,
    SimulationConfig,
    SystemConfig,
    TopologyKind,
)

#: Table IV intra-package link: 200 GB/s, 90-cycle latency, 512 B packets.
PAPER_LOCAL_LINK = LinkConfig(
    bandwidth_gbps=200.0,
    latency_cycles=90.0,
    packet_size_bytes=512,
    efficiency=0.94,
)

#: Table IV inter-package link: 25 GB/s, 200-cycle latency, 256 B packets.
PAPER_PACKAGE_LINK = LinkConfig(
    bandwidth_gbps=25.0,
    latency_cycles=200.0,
    packet_size_bytes=256,
    efficiency=0.94,
)


def paper_network_config(local_bandwidth_scale: float = 1.0) -> NetworkConfig:
    """The Table IV network parameters.

    ``local_bandwidth_scale`` rescales the intra-package link bandwidth
    relative to the paper's 200 GB/s (the Fig. 11 asymmetric system keeps
    the 8x local:package ratio; pass 0.125 for the symmetric variant,
    which equalizes local links to the 25 GB/s package links).
    """
    return NetworkConfig(
        local_link=PAPER_LOCAL_LINK.scaled(local_bandwidth_scale),
        package_link=PAPER_PACKAGE_LINK,
        flit_width_bits=1024,
        router_latency_cycles=1.0,
        vcs_per_vnet=50,
        buffers_per_vc=5000,
    )


def symmetric_network_config() -> NetworkConfig:
    """All links identical to the inter-package class (Sec. V-A/V-B)."""
    return NetworkConfig(
        local_link=PAPER_PACKAGE_LINK,
        package_link=PAPER_PACKAGE_LINK,
        flit_width_bits=1024,
        router_latency_cycles=1.0,
        vcs_per_vnet=50,
        buffers_per_vc=5000,
    )


def paper_system_config(
    topology: TopologyKind = TopologyKind.TORUS,
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.BASELINE,
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.LIFO,
    preferred_set_splits: int = 16,
) -> SystemConfig:
    """System-layer defaults used across Section V.

    Table IV lists two unidirectional local rings and two bidirectional
    inter-package rings — read as two across the package fabric, i.e. one
    bidirectional ring per inter-package dimension (the Fig. 11/12
    collective studies explicitly upgrade to "four bi-directional rings
    across packages" and pass ring counts themselves).  Endpoint delay is
    10 cycles; routing is software-based.  The dispatcher issues 16 chunks
    when fewer than 8 are in their first phase (Sec. V-F).
    """
    return SystemConfig(
        topology=topology,
        algorithm=algorithm,
        scheduling_policy=scheduling_policy,
        local_rings=2,
        vertical_rings=1,
        horizontal_rings=1,
        global_switches=2,
        endpoint_delay_cycles=10.0,
        preferred_set_splits=preferred_set_splits,
        dispatch_threshold=8,
        dispatch_batch=16,
    )


def paper_compute_config(compute_scale: float = 1.0) -> ComputeConfig:
    """The 256x256 TPU-like systolic array of Sec. IV-A."""
    return ComputeConfig(
        array_rows=256,
        array_cols=256,
        dram_bandwidth_gbps=3600.0,
        compute_scale=compute_scale,
    )


def paper_simulation_config(
    topology: TopologyKind = TopologyKind.TORUS,
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.BASELINE,
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.LIFO,
    local_bandwidth_scale: float = 1.0,
    compute_scale: float = 1.0,
    num_passes: int = 1,
    preferred_set_splits: int = 16,
) -> SimulationConfig:
    """One-stop bundle of the paper's Table IV defaults."""
    return SimulationConfig(
        system=paper_system_config(
            topology=topology,
            algorithm=algorithm,
            scheduling_policy=scheduling_policy,
            preferred_set_splits=preferred_set_splits,
        ),
        network=paper_network_config(local_bandwidth_scale=local_bandwidth_scale),
        compute=paper_compute_config(compute_scale=compute_scale),
        num_passes=num_passes,
    )
