"""Logical topology views over physical fabrics.

The system layer "deals with the logical topology, that might be
completely different from the actual physical network topology"
(Sec. IV-B).  In the default configuration the mapping is one-to-one:
:class:`LogicalTopology` simply decorates a fabric with scope handling
(which dimensions a collective spans — hybrid parallelism restricts
collectives to subsets of dimensions) and with builder conveniences.
Non-identity mappings are built with :mod:`repro.topology.mapping`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config.parameters import (
    AllToAllShape,
    NetworkConfig,
    SystemConfig,
    TorusShape,
)
from repro.config.units import Clock, DEFAULT_CLOCK
from repro.errors import TopologyError
from repro.network.physical.alltoall import AllToAllFabric
from repro.network.physical.fabric import Fabric
from repro.network.physical.torus import TorusFabric
from repro.dims import Dimension


class LogicalTopology:
    """A fabric plus collective-facing dimension scoping."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric

    @property
    def num_npus(self) -> int:
        return self.fabric.num_npus

    @property
    def dimensions(self) -> list[Dimension]:
        return self.fabric.dimensions

    def dim_sizes(self, scope: Optional[Sequence[Dimension]] = None) -> list[tuple[Dimension, int]]:
        """(dimension, size) pairs in traversal order, optionally scoped.

        ``scope=None`` means the collective spans every dimension (pure
        data parallelism); hybrid parallelism passes the subset of
        dimensions its group runs across (Sec. V-E).
        """
        dims = self.fabric.dimensions
        if scope is not None:
            unknown = [d for d in scope if d not in dims]
            if unknown:
                raise TopologyError(f"scope dimensions {unknown} not in topology {dims}")
            dims = [d for d in dims if d in set(scope)]
        return [(d, self.fabric.dim_size(d)) for d in dims]

    def channels_in(self, dim: Dimension) -> int:
        """Parallel channels per group of ``dim`` (the LSQ count driver)."""
        groups = self.fabric.groups(dim)
        counts = {len(chs) for chs in groups.values()}
        if len(counts) != 1:
            raise TopologyError(
                f"non-uniform channel counts in {dim}: {sorted(counts)}")
        return min(counts)


def build_torus_topology(
    shape: TorusShape,
    network: NetworkConfig,
    system: Optional[SystemConfig] = None,
    clock: Clock = DEFAULT_CLOCK,
) -> LogicalTopology:
    """Build a hierarchical torus with ring counts from ``system``
    (Table III #9-#11); defaults to the Table IV ring counts."""
    system = system if system is not None else SystemConfig()
    fabric = TorusFabric(
        shape,
        network,
        local_rings=system.local_rings,
        horizontal_rings=system.horizontal_rings,
        vertical_rings=system.vertical_rings,
        clock=clock,
    )
    return LogicalTopology(fabric)


def build_alltoall_topology(
    shape: AllToAllShape,
    network: NetworkConfig,
    system: Optional[SystemConfig] = None,
    clock: Clock = DEFAULT_CLOCK,
) -> LogicalTopology:
    """Build a hierarchical alltoall with the configured switch count
    (Table III #12)."""
    system = system if system is not None else SystemConfig()
    fabric = AllToAllFabric(
        shape,
        network,
        local_rings=system.local_rings,
        global_switches=system.global_switches,
        clock=clock,
    )
    return LogicalTopology(fabric)
