"""Logical topologies, dimensions, and logical-to-physical mapping."""

from repro.dims import Dimension
from repro.topology.logical import (
    LogicalTopology,
    build_alltoall_topology,
    build_torus_topology,
)
from repro.topology.auto_map import map_torus_onto_fabric
from repro.topology.mapping import MappedRingChannel, map_ring_over_ring

__all__ = [
    "Dimension",
    "LogicalTopology",
    "MappedRingChannel",
    "build_alltoall_topology",
    "build_torus_topology",
    "map_ring_over_ring",
    "map_torus_onto_fabric",
]
