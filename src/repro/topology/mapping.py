"""Logical-to-physical topology mapping (Sec. IV-B).

The system layer's logical topology can differ from the physical one:
"map a single logical topology on different physical topologies and
compare the results (e.g. mapping a 3D logical topology on a 1D or 2D
physical torus)".  :class:`MappedRingChannel` realizes this: a logical
ring whose per-hop "links" are multi-link physical paths, so a logical
neighbour send may traverse several physical links (sharing them with
other logical rings and paying the extra serialization and queuing).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NetworkError, TopologyError
from repro.network.channel import RingChannel
from repro.network.link import Link


class MappedRingChannel:
    """A logical unidirectional ring realized over arbitrary physical paths.

    ``hop_paths[i]`` is the ordered physical link path carrying the
    logical hop from ``nodes[i]`` to ``nodes[(i+1) % n]``.  Implements the
    same interface ring algorithms use (``path``, ``link_from`` is
    replaced by ``path`` usage internally, so algorithms built on
    :class:`RingChannel` work unchanged through duck typing except that
    ``link_from`` returns the first physical link of the hop).
    """

    def __init__(
        self,
        nodes: Sequence[int],
        hop_paths: Sequence[Sequence[Link]],
        name: str = "mapped-ring",
    ):
        if len(nodes) < 2:
            raise TopologyError(f"a ring needs >= 2 nodes, got {len(nodes)}")
        if len(set(nodes)) != len(nodes):
            raise TopologyError(f"ring nodes must be unique: {nodes}")
        if len(hop_paths) != len(nodes):
            raise TopologyError(
                f"need {len(nodes)} hop paths, got {len(hop_paths)}"
            )
        for i, path in enumerate(hop_paths):
            if not path:
                raise TopologyError(f"hop {i} has an empty physical path")
            src, dst = nodes[i], nodes[(i + 1) % len(nodes)]
            if path[0].src != src or path[-1].dst != dst:
                raise TopologyError(
                    f"hop {i} path runs {path[0].src}->{path[-1].dst}, "
                    f"expected {src}->{dst}"
                )
            for a, b in zip(path, path[1:]):
                if a.dst != b.src:
                    raise TopologyError(f"discontinuous hop {i}: {a!r} then {b!r}")
        self.nodes = list(nodes)
        self.hop_paths = [list(p) for p in hop_paths]
        self.name = name
        self._index = {node: i for i, node in enumerate(self.nodes)}

    @property
    def size(self) -> int:
        return len(self.nodes)

    def position(self, node: int) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise TopologyError(f"node {node} is not on ring {self.name}") from None

    def next_node(self, node: int) -> int:
        return self.nodes[(self.position(node) + 1) % self.size]

    def prev_node(self, node: int) -> int:
        return self.nodes[(self.position(node) - 1) % self.size]

    def node_at_distance(self, node: int, distance: int) -> int:
        return self.nodes[(self.position(node) + distance) % self.size]

    def link_from(self, node: int) -> Link:
        """First physical link of the hop out of ``node``.

        Note: ring algorithms send with an explicit path; this accessor
        exists for interface parity and diagnostics.
        """
        return self.hop_paths[self.position(node)][0]

    def hop_path(self, node: int) -> list[Link]:
        """Full physical path of the logical hop out of ``node``."""
        return self.hop_paths[self.position(node)]

    def path(self, src: int, dst: int) -> list[Link]:
        i, j = self.position(src), self.position(dst)
        if i == j:
            raise NetworkError(f"path src == dst == {src}")
        hops = (j - i) % self.size
        links: list[Link] = []
        for k in range(hops):
            links.extend(self.hop_paths[(i + k) % self.size])
        return links


def map_ring_over_ring(
    logical_nodes: Sequence[int],
    physical_ring: RingChannel,
    name: str = "remapped",
) -> MappedRingChannel:
    """Map a logical ring onto a physical ring's links.

    ``logical_nodes`` must be a subset (or reordering) of the physical
    ring's nodes; each logical hop becomes the downstream physical path
    between consecutive logical nodes.  This is the paper's "map a 3D
    logical topology on a 1D physical torus" building block: call it once
    per logical dimension with the same physical ring.
    """
    n = len(logical_nodes)
    hop_paths = [
        physical_ring.path(logical_nodes[i], logical_nodes[(i + 1) % n])
        for i in range(n)
    ]
    return MappedRingChannel(logical_nodes, hop_paths, name=name)
