"""Automatic logical-onto-physical topology mapping.

Realizes the Sec. IV-B feature as a one-call operation: take any
*logical* hierarchical-torus shape and lay its rings over an arbitrary
*physical* fabric, routing every logical hop along the fabric's
minimum-latency link path.  Logical hops that are not physically adjacent
share physical links with other rings — exactly the contention the
feature exists to study.
"""

from __future__ import annotations

from repro.config.parameters import TorusShape
from repro.dims import Dimension
from repro.errors import TopologyError
from repro.network.physical.fabric import Fabric
from repro.network.routing import FabricRouter
from repro.topology.logical import LogicalTopology
from repro.topology.mapping import MappedRingChannel


class _MappedFabricView(Fabric):
    """A channel structure borrowed from a host fabric's links.

    Shares the host's links (and thus its contention) but presents the
    logical shape's dimensions/groups to the system layer.
    """

    def __init__(self, host: Fabric, shape: TorusShape):
        # Deliberately skip Fabric.__init__'s link allocation: this view
        # owns no links of its own.
        self.num_npus = host.num_npus
        self.network = host.network
        self.clock = host.clock
        self.links = host.links
        self.channels = {}
        self._next_switch_id = host._next_switch_id
        self.shape = shape
        self._host = host

    def group_of(self, dim: Dimension, npu: int) -> tuple[int, ...]:
        s = self.shape
        local = npu % s.local
        horizontal = (npu // s.local) % s.horizontal
        vertical = npu // (s.local * s.horizontal)
        if dim is Dimension.LOCAL:
            return (horizontal, vertical)
        if dim is Dimension.HORIZONTAL:
            return (local, vertical)
        if dim is Dimension.VERTICAL:
            return (horizontal, local)
        raise TopologyError(f"mapped torus has no {dim} dimension")


def map_torus_onto_fabric(
    shape: TorusShape,
    physical: Fabric,
    rings_per_dim: int = 1,
) -> LogicalTopology:
    """Lay a logical M x N x K torus over ``physical``.

    The logical NPU numbering is the identity (logical node i is physical
    NPU i); the shape's NPU count must match the fabric's.  Every logical
    dimension gets ``rings_per_dim`` ring channels whose hops are routed
    physical paths; channels beyond the first reuse the same paths (the
    physical links are the shared resource).
    """
    if shape.num_npus != physical.num_npus:
        raise TopologyError(
            f"logical shape {shape} has {shape.num_npus} NPUs, fabric has "
            f"{physical.num_npus}"
        )
    if rings_per_dim < 1:
        raise TopologyError("rings_per_dim must be >= 1")

    router = FabricRouter(physical)
    view = _MappedFabricView(physical, shape)

    def npu_id(l: int, h: int, v: int) -> int:
        return l + shape.local * h + shape.local * shape.horizontal * v

    def add_rings(dim: Dimension, group: tuple[int, ...], nodes: list[int]) -> None:
        hop_paths = [
            router.path(nodes[i], nodes[(i + 1) % len(nodes)])
            for i in range(len(nodes))
        ]
        channels = []
        for r in range(rings_per_dim):
            order = list(reversed(nodes)) if r % 2 else list(nodes)
            paths = ([router.path(order[i], order[(i + 1) % len(order)])
                      for i in range(len(order))]
                     if r % 2 else hop_paths)
            channels.append(MappedRingChannel(
                order, paths, name=f"mapped-{dim}{group}#{r}"))
        view._add_channels(dim, group, channels)

    if shape.local >= 2:
        for v in range(shape.vertical):
            for h in range(shape.horizontal):
                add_rings(Dimension.LOCAL, (h, v),
                          [npu_id(l, h, v) for l in range(shape.local)])
    if shape.horizontal >= 2:
        for v in range(shape.vertical):
            for l in range(shape.local):
                add_rings(Dimension.HORIZONTAL, (l, v),
                          [npu_id(l, h, v) for h in range(shape.horizontal)])
    if shape.vertical >= 2:
        for h in range(shape.horizontal):
            for l in range(shape.local):
                add_rings(Dimension.VERTICAL, (h, l),
                          [npu_id(l, h, v) for v in range(shape.vertical)])
    if not view.channels:
        raise TopologyError(f"degenerate logical shape {shape}")
    return LogicalTopology(view)
