"""Perf-trajectory tooling: wall-clock phase timing and events/sec.

See docs/PERFORMANCE.md.  The CLI's global ``--profile`` flag prints a
:class:`RunProfile` after any run; ``benchmarks/bench_hot_path.py``
writes the canonical macro-benchmark as ``BENCH_PR<k>.json`` and CI
fails on a >20% events/sec regression versus the newest committed
baseline (:func:`find_newest_bench`).
"""

from repro.profiling.profiler import (
    BENCH_SCHEMA,
    RunProfile,
    active_profile,
    compare_bench,
    find_newest_bench,
    read_bench,
    set_active_profile,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "RunProfile",
    "active_profile",
    "compare_bench",
    "find_newest_bench",
    "read_bench",
    "set_active_profile",
    "write_bench",
]
