"""Wall-clock profiling for simulator runs: phases + events/sec.

The simulator's own clock is simulated cycles; this module measures the
*host* cost of producing them — per-phase wall-clock (build / simulate /
report) and the throughput figure every perf PR is judged by:
**events per second of wall-clock** through the event queue.

Two consumers:

* the CLI (global ``--profile`` flag) prints a phase table and events/sec
  after any run, and
* ``benchmarks/bench_hot_path.py`` writes the canonical macro-benchmark
  result as ``BENCH_PR5.json`` so the repository records a perf
  trajectory (see docs/PERFORMANCE.md for the schema and how CI gates on
  regressions).
"""

from __future__ import annotations

import json
import os
import platform
import time  # det: allow-file[wall-clock] profiling measures host wall-clock by design
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.errors import ReproError

#: Schema version of BENCH_*.json files.
BENCH_SCHEMA = 1


@dataclass
class RunProfile:
    """Accumulated wall-clock phases and event-throughput counters."""

    name: str = "run"
    #: Ordered (phase, seconds) pairs; a phase name may repeat.
    phases: list = field(default_factory=list)
    #: Simulator events executed inside the profiled run.
    events: int = 0
    #: Final simulated time of the run (cycles).
    cycles: float = 0.0

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Time one phase: ``with profile.phase("simulate"): ...``"""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.phases.append((label, time.perf_counter() - start))

    def add_phase(self, label: str, seconds: float) -> None:
        self.phases.append((label, float(seconds)))

    def record_system(self, system: Any) -> None:
        """Pull event/cycle counters off a finished system.

        Counts *logical* events (:attr:`EventQueue.events_simulated`):
        dispatches plus the singleton events that batched handlers folded
        away (delivery coalescing, flit bursts).  That keeps events/sec
        meaningful as a throughput figure across batching changes — the
        denominator work is what the unbatched design would have
        dispatched, not however few dispatches the batching needed.
        """
        self.events += system.events.events_simulated
        self.cycles = max(self.cycles, system.now)

    @property
    def total_seconds(self) -> float:
        return sum(seconds for _, seconds in self.phases)

    def seconds_of(self, label: str) -> float:
        return sum(s for name, s in self.phases if name == label)

    @property
    def events_per_sec(self) -> float:
        """Events/sec over the *simulate* phases (the hot-loop figure)."""
        simulate = self.seconds_of("simulate") or self.total_seconds
        return self.events / simulate if simulate > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "phases": [{"label": label, "seconds": seconds}
                       for label, seconds in self.phases],
            "wall_seconds": self.total_seconds,
            "events": self.events,
            "cycles": self.cycles,
            "events_per_sec": self.events_per_sec,
        }

    def format(self) -> str:
        lines = [f"profile [{self.name}]: {self.total_seconds:.3f}s wall"]
        for label, seconds in self.phases:
            lines.append(f"  {label:<12s} {seconds:8.3f}s")
        if self.events:
            lines.append(
                f"  events       {self.events:>10,d}  "
                f"({self.events_per_sec:,.0f} events/sec)")
        return "\n".join(lines)


# -- process-global active profile -------------------------------------------------
#
# The CLI's --profile flag installs one RunProfile; command handlers that
# finish with a live system record its event counters here so the final
# printout carries events/sec, not just wall-clock.

_active_profile: Optional[RunProfile] = None


def set_active_profile(profile: Optional[RunProfile]) -> None:
    """Install (or clear, with ``None``) the process-wide profile."""
    global _active_profile
    _active_profile = profile


def active_profile() -> Optional[RunProfile]:
    return _active_profile


def write_bench(path: str, benchmarks: list[dict[str, Any]],
                label: str = "") -> str:
    """Write a ``BENCH_*.json`` perf-trajectory document.

    ``benchmarks`` are :meth:`RunProfile.as_dict` payloads (one per
    macro-benchmark).  The document carries enough host context to judge
    whether two files are comparable.
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": benchmarks,
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)
    return path


def find_newest_bench(root: str) -> str:
    """Path of the newest ``BENCH_PR<k>.json`` under ``root``.

    "Newest" is the highest PR number, not mtime or lexicographic order
    (``BENCH_PR10`` > ``BENCH_PR5`` numerically but not as strings) —
    checkouts do not preserve commit times, so the filename is the only
    trustworthy ordering.  Non-matching ``BENCH_*.json`` names are
    ignored.  Raises :class:`ReproError` when no baseline exists.
    """
    import re

    best: tuple[int, str] | None = None
    pattern = re.compile(r"^BENCH_PR(\d+)\.json$")
    try:
        names = os.listdir(root)
    except OSError as exc:
        raise ReproError(f"cannot list bench root {root}: {exc}") from exc
    for name in names:
        match = pattern.match(name)
        if match:
            key = int(match.group(1))
            if best is None or key > best[0]:
                best = (key, name)
    if best is None:
        raise ReproError(f"no BENCH_PR<k>.json baseline found in {root}")
    return os.path.join(root, best[1])


def read_bench(path: str) -> dict[str, Any]:
    """Load and validate a ``BENCH_*.json`` document."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as exc:
        raise ReproError(f"cannot read bench file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"invalid bench JSON in {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ReproError(f"{path}: not a schema-{BENCH_SCHEMA} bench file")
    return doc


def compare_bench(baseline: dict[str, Any], current: dict[str, Any],
                  max_regression: float = 0.20) -> list[str]:
    """Events/sec regressions of ``current`` vs ``baseline``.

    Returns one message per benchmark whose events/sec dropped by more
    than ``max_regression`` (empty = within tolerance).  Benchmarks
    present on only one side are ignored — adding a benchmark must not
    fail the gate.
    """
    if not 0 < max_regression < 1:
        raise ReproError(f"max_regression must be in (0, 1): {max_regression}")
    base = {b["name"]: b for b in baseline.get("benchmarks", [])}
    regressions = []
    for bench in current.get("benchmarks", []):
        ref = base.get(bench["name"])
        if ref is None or not ref.get("events_per_sec"):
            continue
        ratio = bench["events_per_sec"] / ref["events_per_sec"]
        if ratio < 1.0 - max_regression:
            regressions.append(
                f"{bench['name']}: {bench['events_per_sec']:,.0f} events/sec "
                f"is {1 - ratio:.0%} below baseline "
                f"{ref['events_per_sec']:,.0f}"
            )
    return regressions
