"""Exception hierarchy for the repro (ASTRA-SIM reproduction) package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent simulator configuration."""


class TopologyError(ReproError):
    """A malformed physical or logical topology, or an invalid mapping."""


class NetworkError(ReproError):
    """A network-layer failure (unroutable message, bad endpoint, ...)."""


class TransportError(NetworkError):
    """Reliable transport gave up on a message (retry budget exhausted)."""


class CollectiveError(ReproError):
    """An invalid collective request or a broken collective state machine."""


class SchedulerError(ReproError):
    """A system-layer scheduling invariant was violated."""


class WorkloadError(ReproError):
    """A malformed workload description or training-loop failure."""


class SimulationError(ReproError):
    """The event engine detected an inconsistency (e.g. time moving backwards)."""


class StallError(SimulationError):
    """The watchdog detected a no-progress window (see repro.resilience)."""


class CheckpointError(ReproError):
    """A checkpoint could not be taken, loaded, or verified on resume."""


class SanitizerError(ReproError):
    """A runtime invariant checker detected a violation (see repro.sanitize)."""
