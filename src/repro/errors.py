"""Exception hierarchy for the repro (ASTRA-SIM reproduction) package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

# -- the process exit-code contract ---------------------------------------------
#
# Every astra-repro subcommand that can partially succeed (lint, analyze,
# chaos, supervised batches, serve) shares one three-value contract.  The
# constants live here — next to the exceptions that map onto them — so the
# CLI paths and the supervision/service layers declare it once instead of
# re-hardcoding 0/1/2 at every return site.

#: Clean exit: every point completed / no findings at the gating severity.
EXIT_OK = 0
#: Partial results: findings were reported, or at least one design point
#: was quarantined — completed work is still reported.
EXIT_PARTIAL = 1
#: Usage or configuration error: nothing was simulated.
EXIT_CONFIG = 2


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid or inconsistent simulator configuration."""


class TopologyError(ReproError):
    """A malformed physical or logical topology, or an invalid mapping."""


class NetworkError(ReproError):
    """A network-layer failure (unroutable message, bad endpoint, ...)."""


class TransportError(NetworkError):
    """Reliable transport gave up on a message (retry budget exhausted)."""


class CollectiveError(ReproError):
    """An invalid collective request or a broken collective state machine."""


class SchedulerError(ReproError):
    """A system-layer scheduling invariant was violated."""


class WorkloadError(ReproError):
    """A malformed workload description or training-loop failure."""


class SimulationError(ReproError):
    """The event engine detected an inconsistency (e.g. time moving backwards)."""


class StallError(SimulationError):
    """The watchdog detected a no-progress window (see repro.resilience)."""


class CheckpointError(ReproError):
    """A checkpoint could not be taken, loaded, or verified on resume."""


class SanitizerError(ReproError):
    """A runtime invariant checker detected a violation (see repro.sanitize)."""
