"""Run reports: the layer-wise and breakdown views of Figs. 12-16.

Turns a :class:`TrainingReport` plus the system's
:class:`DelayBreakdown` into printable tables matching what the paper
plots: per-layer raw communication time (Figs. 13/14), per-layer compute
vs. exposed communication (Fig. 15), and the queue/network phase
breakdown (Figs. 12b/16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.system.stats import DelayBreakdown
from repro.workload.parallelism import TrainingPhase
from repro.workload.training_loop import TrainingReport


@dataclass(frozen=True)
class LayerRow:
    """One row of the layer-wise tables."""

    index: int
    name: str
    forward_comm_cycles: float
    input_grad_comm_cycles: float
    weight_grad_comm_cycles: float
    compute_cycles: float
    exposed_cycles: float

    @property
    def total_comm_cycles(self) -> float:
        return (self.forward_comm_cycles + self.input_grad_comm_cycles
                + self.weight_grad_comm_cycles)


def layer_rows(report: TrainingReport) -> list[LayerRow]:
    """Layer-wise rows in model order (the x-axis of Figs. 13-15)."""
    rows = []
    for i, layer in enumerate(report.layers):
        rows.append(LayerRow(
            index=i,
            name=layer.name,
            forward_comm_cycles=layer.comm_cycles[TrainingPhase.FORWARD],
            input_grad_comm_cycles=layer.comm_cycles[TrainingPhase.INPUT_GRAD],
            weight_grad_comm_cycles=layer.comm_cycles[TrainingPhase.WEIGHT_GRAD],
            compute_cycles=layer.total_compute_cycles,
            exposed_cycles=layer.exposed_cycles,
        ))
    return rows


def format_layer_table(report: TrainingReport, max_rows: Optional[int] = None) -> str:
    """A Fig. 14/15-style text table."""
    rows = layer_rows(report)
    if max_rows is not None:
        rows = rows[:max_rows]
    header = (f"{'#':>3} {'layer':<16} {'compute':>12} {'comm(fwd)':>12} "
              f"{'comm(ig)':>12} {'comm(wg)':>12} {'exposed':>12}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.index:>3} {r.name:<16} {r.compute_cycles:>12.0f} "
            f"{r.forward_comm_cycles:>12.0f} {r.input_grad_comm_cycles:>12.0f} "
            f"{r.weight_grad_comm_cycles:>12.0f} {r.exposed_cycles:>12.0f}"
        )
    return "\n".join(lines)


def format_breakdown(breakdown: DelayBreakdown) -> str:
    """A Fig. 12b-style queue/network delay table."""
    header = f"{'stage':<10} {'queue (cyc)':>14} {'network (cyc)':>14}"
    lines = [header, "-" * len(header)]
    for row in breakdown.rows():
        lines.append(
            f"P{row['phase']:<9} {row['queue']:>14.1f} {row['network']:>14.1f}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class RunSummary:
    """The headline numbers of one training simulation."""

    model_name: str
    num_iterations: int
    total_cycles: float
    compute_cycles: float
    exposed_comm_cycles: float
    raw_comm_cycles: float
    exposed_comm_ratio: float

    @classmethod
    def from_report(cls, report: TrainingReport) -> "RunSummary":
        return cls(
            model_name=report.model_name,
            num_iterations=report.num_iterations,
            total_cycles=report.total_cycles,
            compute_cycles=report.total_compute_cycles,
            exposed_comm_cycles=report.total_exposed_cycles,
            raw_comm_cycles=report.total_comm_cycles,
            exposed_comm_ratio=report.exposed_comm_ratio,
        )

    def format(self) -> str:
        return (
            f"{self.model_name}: {self.num_iterations} iteration(s) in "
            f"{self.total_cycles:,.0f} cycles | compute {self.compute_cycles:,.0f} "
            f"| exposed comm {self.exposed_comm_cycles:,.0f} "
            f"({self.exposed_comm_ratio:.1%}) | raw comm {self.raw_comm_cycles:,.0f}"
        )
