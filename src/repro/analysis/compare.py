"""Side-by-side comparison helpers for design-space sweeps.

The paper's workflow compares many (topology, algorithm, scheduling)
points; :class:`ComparisonTable` collects labelled results and renders a
Fig. 9/10/11-style table with speedups against a chosen baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass
class ComparisonTable:
    """Labelled metric rows with speedup-vs-baseline rendering."""

    metric: str = "cycles"
    rows: dict[str, float] = field(default_factory=dict)

    def add(self, label: str, value: float) -> None:
        if label in self.rows:
            raise ReproError(f"duplicate comparison label {label!r}")
        if value <= 0:
            raise ReproError(f"{self.metric} must be positive, got {value}")
        self.rows[label] = value

    def speedup(self, label: str, baseline: str) -> float:
        """How many times faster ``label`` is than ``baseline``."""
        try:
            return self.rows[baseline] / self.rows[label]
        except KeyError as missing:
            raise ReproError(f"unknown label {missing}") from None

    def best(self) -> str:
        if not self.rows:
            raise ReproError("comparison table is empty")
        return min(self.rows, key=self.rows.get)

    def format(self, baseline: str | None = None) -> str:
        if not self.rows:
            raise ReproError("comparison table is empty")
        if baseline is None:
            baseline = next(iter(self.rows))
        width = max(len(label) for label in self.rows)
        lines = [f"{'configuration':<{width}}  {self.metric:>14}  {'speedup':>8}"]
        for label, value in self.rows.items():
            lines.append(
                f"{label:<{width}}  {value:>14,.0f}  "
                f"{self.speedup(label, baseline):>7.2f}x"
            )
        return "\n".join(lines)
