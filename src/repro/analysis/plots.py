"""ASCII chart rendering for figure rows.

The benches regenerate the paper's figures as tables; these helpers
render the same rows as terminal bar/line charts so a sweep's shape is
visible at a glance without a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ReproError

_BAR = "█"
_HALF = "▌"


def bar_chart(
    rows: Iterable[dict],
    label_key: str,
    value_key: str,
    width: int = 50,
    title: str | None = None,
) -> str:
    """A horizontal bar chart of one value column.

    >>> print(bar_chart([{"x": "a", "v": 2.0}, {"x": "b", "v": 4.0}],
    ...                 "x", "v", width=4))
    a │██   2
    b │████ 4
    """
    rows = list(rows)
    if not rows:
        raise ReproError("bar_chart needs at least one row")
    if width < 1:
        raise ReproError("width must be >= 1")
    values = [float(r[value_key]) for r in rows]
    if any(v < 0 for v in values):
        raise ReproError("bar_chart requires non-negative values")
    peak = max(values) or 1.0
    label_width = max(len(str(r[label_key])) for r in rows)
    lines = [] if title is None else [title]
    for row, value in zip(rows, values):
        filled = value / peak * width
        bar = _BAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += _HALF
        bar = bar.ljust(width)
        lines.append(f"{str(row[label_key]):<{label_width}} │{bar} {value:g}")
    return "\n".join(lines)


def series_chart(
    rows: Iterable[dict],
    x_key: str,
    series_keys: Sequence[str],
    width: int = 60,
    title: str | None = None,
) -> str:
    """A multi-series comparison: one bar group per x value.

    Mirrors the grouped-bar figures of the paper (e.g. Fig. 9's
    alltoall-vs-torus per message size).
    """
    rows = list(rows)
    if not rows:
        raise ReproError("series_chart needs at least one row")
    if not series_keys:
        raise ReproError("series_chart needs at least one series")
    peak = max(float(row[key]) for row in rows for key in series_keys) or 1.0
    key_width = max(len(k) for k in series_keys)
    lines = [] if title is None else [title]
    for row in rows:
        lines.append(f"{x_key}={row[x_key]:g}" if isinstance(row[x_key], (int, float))
                     else f"{x_key}={row[x_key]}")
        for key in series_keys:
            value = float(row[key])
            bar = _BAR * max(1, int(value / peak * width)) if value > 0 else ""
            lines.append(f"  {key:<{key_width}} │{bar} {value:,.0f}")
    return "\n".join(lines)
