"""Reporting and analysis helpers for simulation results."""

from repro.analysis.compare import ComparisonTable
from repro.analysis.export import (
    breakdown_to_dict,
    report_to_dict,
    report_to_json,
    rows_to_csv,
)
from repro.analysis.plots import bar_chart, series_chart
from repro.analysis.trace import (
    PhaseSpan,
    collect_timeline,
    phase_occupancy,
    to_chrome_trace,
)
from repro.analysis.report import (
    LayerRow,
    RunSummary,
    format_breakdown,
    format_layer_table,
    layer_rows,
)

__all__ = [
    "ComparisonTable",
    "PhaseSpan",
    "bar_chart",
    "breakdown_to_dict",
    "collect_timeline",
    "phase_occupancy",
    "report_to_dict",
    "report_to_json",
    "rows_to_csv",
    "series_chart",
    "to_chrome_trace",
    "LayerRow",
    "RunSummary",
    "format_breakdown",
    "format_layer_table",
    "layer_rows",
]
