"""Serialize simulation results to JSON/CSV for downstream tooling.

Keeps the figure-regeneration pipeline scriptable: every bench's rows can
be dumped and re-plotted outside Python.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

from repro.system.stats import DelayBreakdown
from repro.workload.parallelism import TrainingPhase
from repro.workload.training_loop import TrainingReport


def report_to_dict(report: TrainingReport) -> dict:
    """A JSON-ready dictionary of a training run."""
    return {
        "model": report.model_name,
        "num_iterations": report.num_iterations,
        "total_cycles": report.total_cycles,
        "total_compute_cycles": report.total_compute_cycles,
        "total_exposed_cycles": report.total_exposed_cycles,
        "total_comm_cycles": report.total_comm_cycles,
        "exposed_comm_ratio": report.exposed_comm_ratio,
        "iteration_ends": list(report.iteration_ends),
        "layers": [
            {
                "name": layer.name,
                "compute_cycles": {
                    phase.value: layer.compute_cycles[phase]
                    for phase in TrainingPhase
                },
                "comm_cycles": {
                    phase.value: layer.comm_cycles[phase]
                    for phase in TrainingPhase
                },
                "comm_bytes": {
                    phase.value: layer.comm_bytes[phase]
                    for phase in TrainingPhase
                },
                "exposed_cycles": layer.exposed_cycles,
            }
            for layer in report.layers
        ],
    }


def report_to_json(report: TrainingReport, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent)


def breakdown_to_dict(breakdown: DelayBreakdown) -> dict:
    """The Fig. 12b rows plus raw per-phase counters."""
    return {
        "rows": breakdown.rows(),
        "phases": {
            str(phase): {
                "messages": stats.messages,
                "bytes": stats.bytes,
                "queue_cycles": stats.queue_cycles,
                "network_cycles": stats.network_cycles,
            }
            for phase, stats in sorted(breakdown.phase_stats.items())
        },
    }


def rows_to_csv(rows: Iterable[dict], keys: list[str] | None = None) -> str:
    """Render any bench's row dicts as CSV text."""
    rows = list(rows)
    if not rows:
        return ""
    if keys is None:
        keys = list(rows[0])
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=keys, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
