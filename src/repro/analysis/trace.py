"""Timeline reconstruction and Chrome-trace export.

Build a :class:`repro.system.System` with ``trace=True`` and, after the
run, hand it to :func:`collect_timeline` to get per-chunk phase spans —
or :func:`to_chrome_trace` to get a ``chrome://tracing`` /
https://ui.perfetto.dev compatible JSON string where each collective set
is a track and each chunk-phase is a duration event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ReproError
from repro.system.sys_layer import System


@dataclass(frozen=True)
class PhaseSpan:
    """One chunk spending [start, end] cycles in one collective phase."""

    set_id: int
    set_name: str
    chunk_index: int
    phase_index: int
    phase_label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def collect_timeline(system: System) -> list[PhaseSpan]:
    """Extract every finished chunk's phase spans from a traced system."""
    if not system.scheduler.keep_completed:
        raise ReproError(
            "timeline collection needs a traced run: System(..., trace=True)"
        )
    spans = []
    for ready, execution in system.scheduler.completed_executions:
        collective = ready.collective
        for phase_idx, (start, end) in enumerate(execution.phase_spans):
            if start is None or end is None:
                continue
            spec = execution.plan[phase_idx]
            spans.append(PhaseSpan(
                set_id=collective.set_id,
                set_name=collective.name or f"set{collective.set_id}",
                chunk_index=ready.index_in_set,
                phase_index=phase_idx + 1,
                phase_label=f"P{phase_idx + 1}:{spec.op.value}@{spec.dim}",
                start=start,
                end=end,
            ))
    spans.sort(key=lambda s: (s.set_id, s.chunk_index, s.phase_index))
    return spans


def to_chrome_trace(system: System, cycles_per_microsecond: float = 1000.0) -> str:
    """Serialize the timeline as Chrome trace-event JSON.

    Each collective set becomes a process, each chunk a thread, each
    phase a complete ("X") duration event.  ``cycles_per_microsecond``
    maps simulated cycles onto the trace's microsecond timebase (default:
    the 1 GHz clock).
    """
    if cycles_per_microsecond <= 0:
        raise ReproError("cycles_per_microsecond must be positive")
    events = []
    seen_processes = set()
    for span in collect_timeline(system):
        if span.set_id not in seen_processes:
            seen_processes.add(span.set_id)
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": span.set_id,
                "args": {"name": span.set_name},
            })
        events.append({
            "name": span.phase_label,
            "cat": "collective",
            "ph": "X",
            "pid": span.set_id,
            "tid": span.chunk_index,
            "ts": span.start / cycles_per_microsecond,
            "dur": span.duration / cycles_per_microsecond,
        })
    return json.dumps({"traceEvents": events}, indent=1)


def phase_occupancy(spans: list[PhaseSpan]) -> dict[int, float]:
    """Total busy cycles per phase index across all chunks — a quick view
    of where collective time is spent."""
    out: dict[int, float] = {}
    for span in spans:
        out[span.phase_index] = out.get(span.phase_index, 0.0) + span.duration
    return out
