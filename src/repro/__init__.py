"""repro — a pure-Python reproduction of ASTRA-SIM (ISPASS 2020).

ASTRA-SIM simulates distributed DNN training over hierarchical scale-up
fabrics: a workload layer (training loop + parallelism strategy), a
system layer (topology-aware multi-phase collectives + chunk scheduler),
and a network layer (two backends: a fast analytical link-level model and
a detailed flit/credit/VC model).

Quickstart::

    from repro import (
        CollectiveAlgorithm, System, TorusShape, TrainingLoop,
        build_torus_topology, paper_simulation_config, resnet50,
    )

    config = paper_simulation_config(algorithm=CollectiveAlgorithm.ENHANCED)
    topology = build_torus_topology(TorusShape(2, 4, 4), config.network,
                                    config.system)
    system = System(topology, config)
    model = resnet50(compute=config.compute)
    report = TrainingLoop(system, model, num_iterations=2).run()
    print(report.exposed_comm_ratio)
"""

from repro.collectives import (
    ChunkExecution,
    CollectiveContext,
    CollectiveOp,
    PhaseSpec,
    build_phase_plan,
)
from repro.compute import ConvSpec, GemmShape, LinearSpec, SystolicArrayModel
from repro.config import (
    AllToAllShape,
    Clock,
    CollectiveAlgorithm,
    ComputeConfig,
    LinkConfig,
    NetworkConfig,
    SchedulingPolicy,
    SimulationConfig,
    SystemConfig,
    TopologyKind,
    TorusShape,
    paper_network_config,
    paper_simulation_config,
    paper_system_config,
    symmetric_network_config,
)
from repro.dims import Dimension
from repro.errors import (
    CollectiveError,
    ConfigError,
    NetworkError,
    ReproError,
    SchedulerError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.events import EventQueue
from repro.models import dlrm, mlp, resnet50, transformer
from repro.network import FastBackend, Message
from repro.network.detailed import DetailedBackend
from repro.system import CollectiveSet, System
from repro.topology import (
    LogicalTopology,
    build_alltoall_topology,
    build_torus_topology,
)
from repro.workload import (
    DATA_PARALLEL,
    MODEL_PARALLEL,
    CommSpec,
    DNNModel,
    LayerSpec,
    ParallelismStrategy,
    TrainingLoop,
    TrainingPhase,
    TrainingReport,
    hybrid,
)

__version__ = "1.0.0"

__all__ = [
    "AllToAllShape",
    "ChunkExecution",
    "Clock",
    "CollectiveAlgorithm",
    "CollectiveContext",
    "CollectiveError",
    "CollectiveOp",
    "CollectiveSet",
    "CommSpec",
    "ComputeConfig",
    "ConfigError",
    "ConvSpec",
    "DATA_PARALLEL",
    "DetailedBackend",
    "Dimension",
    "DNNModel",
    "EventQueue",
    "FastBackend",
    "GemmShape",
    "LayerSpec",
    "LinearSpec",
    "LinkConfig",
    "LogicalTopology",
    "Message",
    "MODEL_PARALLEL",
    "NetworkConfig",
    "NetworkError",
    "ParallelismStrategy",
    "PhaseSpec",
    "ReproError",
    "SchedulerError",
    "SchedulingPolicy",
    "SimulationConfig",
    "SimulationError",
    "System",
    "SystemConfig",
    "SystolicArrayModel",
    "TopologyError",
    "TopologyKind",
    "TorusShape",
    "TrainingLoop",
    "TrainingPhase",
    "TrainingReport",
    "WorkloadError",
    "build_alltoall_topology",
    "build_phase_plan",
    "build_torus_topology",
    "dlrm",
    "hybrid",
    "mlp",
    "paper_network_config",
    "paper_simulation_config",
    "paper_system_config",
    "resnet50",
    "symmetric_network_config",
    "transformer",
]
