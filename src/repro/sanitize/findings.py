"""Machine-readable lint/sanitizer findings.

Every check — static or runtime — reports problems as :class:`Finding`
records carrying a stable code, the offending parameter path, a severity
and a human-readable message.  :class:`LintReport` aggregates findings
for one lint target (a config file, a preset, a platform) and renders
them for terminals (``format``) or tooling (``to_dict`` / JSON).
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make ``astra-repro lint`` / ``astra-repro analyze``
    exit with status 1; ``WARNING`` only does under ``--strict``; ``INFO``
    is advisory.  Severities are ordered: ``ERROR`` ranks before
    ``WARNING`` ranks before ``INFO``, and findings sort most-severe
    first (see :meth:`Finding.sort_key`).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Ordering rank: 0 is most severe."""
        return _SEVERITY_RANK[self]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank


_SEVERITY_RANK = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass(frozen=True)
class Finding:
    """One lint/sanitizer finding.

    ``code`` is a stable kebab-case identifier tools can match on (e.g.
    ``dim-product-mismatch``); ``param`` is the dotted parameter path the
    finding anchors to (e.g. ``network.local_link.packet_size_bytes``);
    ``source`` names the linted file or preset.
    """

    severity: Severity
    code: str
    param: str
    message: str
    source: str = ""
    #: 1-based source line for file-anchored findings (the source linter);
    #: 0 means "not line-anchored" (config/runtime findings).
    line: int = 0

    def format(self) -> str:
        where = f"{self.source}: " if self.source else ""
        at = f"{self.param}: " if self.param else ""
        return f"{where}{self.severity.value}: [{self.code}] {at}{self.message}"

    def sort_key(self) -> tuple:
        """Sort most-severe first, then by source, line and code — a
        stable order that does not depend on discovery order."""
        return (self.severity.rank, self.source, self.line, self.code, self.param)

    def to_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = self.severity.value
        return data


@dataclass
class LintReport:
    """All findings for one lint target."""

    source: str = ""
    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        severity: Severity,
        code: str,
        param: str,
        message: str,
        line: int = 0,
    ) -> None:
        self.findings.append(
            Finding(severity=severity, code=code, param=param,
                    message=message, source=self.source, line=line)
        )

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    def sorted_findings(self) -> list[Finding]:
        """Findings most-severe first (see :meth:`Finding.sort_key`)."""
        return sorted(self.findings, key=Finding.sort_key)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def ok(self, strict: bool = False) -> bool:
        """True when the target passes lint (no errors; no warnings if
        ``strict``)."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def format(self) -> str:
        if not self.findings:
            return f"{self.source or 'lint'}: ok"
        return "\n".join(f.format() for f in self.findings)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "findings": [f.to_dict() for f in self.findings],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }


def reports_to_json(reports: list[LintReport], indent: int = 2) -> str:
    """Serialize a batch of lint reports for tooling consumption."""
    return json.dumps([r.to_dict() for r in reports], indent=indent)


def merge_reports(reports: list[LintReport], source: str = "") -> LintReport:
    """Fold a batch of reports into one, findings sorted most-severe first.

    Each finding keeps its own ``source`` (the file or preset it anchors
    to); only the aggregate's label is replaced.  Merging then sorting is
    deterministic regardless of the order the inputs were produced in —
    the aggregate depends on *what* was found, not on directory-walk or
    scheduling order.
    """
    merged = LintReport(source=source)
    for report in reports:
        merged.extend(report.findings)
    merged.findings.sort(key=Finding.sort_key)
    return merged
