"""Machine-readable lint/sanitizer findings.

Every check — static or runtime — reports problems as :class:`Finding`
records carrying a stable code, the offending parameter path, a severity
and a human-readable message.  :class:`LintReport` aggregates findings
for one lint target (a config file, a preset, a platform) and renders
them for terminals (``format``) or tooling (``to_dict`` / JSON).
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make ``astra-repro lint`` exit nonzero; ``WARNING``
    only does under ``--strict``; ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One lint/sanitizer finding.

    ``code`` is a stable kebab-case identifier tools can match on (e.g.
    ``dim-product-mismatch``); ``param`` is the dotted parameter path the
    finding anchors to (e.g. ``network.local_link.packet_size_bytes``);
    ``source`` names the linted file or preset.
    """

    severity: Severity
    code: str
    param: str
    message: str
    source: str = ""

    def format(self) -> str:
        where = f"{self.source}: " if self.source else ""
        return f"{where}{self.severity.value}: [{self.code}] {self.param}: {self.message}"

    def to_dict(self) -> dict:
        data = asdict(self)
        data["severity"] = self.severity.value
        return data


@dataclass
class LintReport:
    """All findings for one lint target."""

    source: str = ""
    findings: list[Finding] = field(default_factory=list)

    def add(
        self,
        severity: Severity,
        code: str,
        param: str,
        message: str,
    ) -> None:
        self.findings.append(
            Finding(severity=severity, code=code, param=param,
                    message=message, source=self.source)
        )

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def ok(self, strict: bool = False) -> bool:
        """True when the target passes lint (no errors; no warnings if
        ``strict``)."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def format(self) -> str:
        if not self.findings:
            return f"{self.source or 'lint'}: ok"
        return "\n".join(f.format() for f in self.findings)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "findings": [f.to_dict() for f in self.findings],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }


def reports_to_json(reports: list[LintReport], indent: int = 2) -> str:
    """Serialize a batch of lint reports for tooling consumption."""
    return json.dumps([r.to_dict() for r in reports], indent=indent)
