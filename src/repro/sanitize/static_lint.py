"""Static lint pass over fully-assembled simulation runs.

Checks everything that can be checked *before* the first event fires:

* parameter-level unit consistency and ranges (on the raw dict, so a bad
  file yields findings with parameter paths instead of one exception),
* cross-parameter consistency — flit width divides packet size, message
  quantum fits a packet, bandwidth hierarchy sanity,
* logical-topology structure — dimension products match the NPU count,
  logical→physical group mappings are bijections, channel uniformity,
* fault-injection factors in range for the target fabric.

The entry points mirror how runs are assembled: :func:`lint_config` for
a constructed :class:`SimulationConfig`, :func:`lint_run_spec` /
:func:`lint_spec_file` for JSON run specs, :func:`lint_platform` for a
harness :class:`PlatformSpec`, :func:`lint_presets` for everything
shipped in :mod:`repro.config.presets`, and :func:`lint_search_space`
for `astra-repro search` space documents (routed automatically by
:func:`lint_run_spec` when a JSON file declares ``axes``).  Service
payloads (the ``astra-repro serve`` POST body; docs/SERVICE.md) route to
:func:`repro.service.schema.lint_payload` when a document carries
``op``/``size_mb``, so the daemon's admission schema is lintable offline.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Optional

from repro.config.io import config_from_dict
from repro.config.parameters import (
    AllToAllShape,
    ComputeConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    SystemConfig,
    TopologyKind,
    TorusShape,
)
from repro.config.units import Clock
from repro.errors import ConfigError, ReproError
from repro.sanitize.findings import Finding, LintReport, Severity

#: Top-level keys a run-spec JSON document may carry.
RUN_SPEC_KEYS = {"config", "topology", "expected_npus", "faults",
                 "fault_schedule", "supervision"}

#: Keys of the ``supervision`` section of a run spec
#: (:class:`repro.parallel.SupervisionPolicy` fields; docs/SUPERVISION.md).
SUPERVISION_KEYS = {"point_timeout_s", "point_event_budget", "max_retries",
                    "backoff_base_s", "backoff_factor", "backoff_max_s",
                    "seed", "on_poison", "poll_interval_s"}

#: Keys of the ``topology`` section of a run spec.
TOPOLOGY_KEYS = {"kind", "shape"}

#: Keys of the ``faults`` section of a run spec.
FAULT_KEYS = {"count", "bandwidth_factor", "extra_latency_cycles", "kind", "seed"}

_SECTION_TYPES = {
    "system": SystemConfig,
    "compute": ComputeConfig,
    "clock": Clock,
}

#: (section path, field, check, message) — raw-value range rules that give
#: the parameter path in the finding instead of a bare ConfigError.
_POSITIVE = ("must be positive", lambda v: v > 0)
_NON_NEGATIVE = ("must be >= 0", lambda v: v >= 0)
_LINK_RULES = {
    "bandwidth_gbps": _POSITIVE,
    "latency_cycles": _NON_NEGATIVE,
    "packet_size_bytes": _POSITIVE,
    "efficiency": ("must be in (0, 1]", lambda v: 0 < v <= 1),
    "quantum_overhead_cycles": _NON_NEGATIVE,
}
_NETWORK_RULES = {
    "flit_width_bits": _POSITIVE,
    "router_latency_cycles": _NON_NEGATIVE,
    "vcs_per_vnet": _POSITIVE,
    "buffers_per_vc": _POSITIVE,
    "switch_latency_cycles": _NON_NEGATIVE,
}
_SYSTEM_RULES = {
    "local_rings": ("must be >= 1", lambda v: v >= 1),
    "vertical_rings": ("must be >= 1", lambda v: v >= 1),
    "horizontal_rings": ("must be >= 1", lambda v: v >= 1),
    "global_switches": ("must be >= 1", lambda v: v >= 1),
    "endpoint_delay_cycles": _NON_NEGATIVE,
    "preferred_set_splits": ("must be >= 1", lambda v: v >= 1),
    "dispatch_threshold": ("must be >= 1", lambda v: v >= 1),
    "dispatch_batch": ("must be >= 1", lambda v: v >= 1),
    "reduction_cycles_per_kb": _NON_NEGATIVE,
}
_TRANSPORT_RULES = {
    "timeout_cycles": _POSITIVE,
    "timeout_per_byte": _NON_NEGATIVE,
    "max_retries": _NON_NEGATIVE,
    "backoff_base_cycles": _NON_NEGATIVE,
    "backoff_factor": ("must be >= 1", lambda v: v >= 1),
    "backoff_max_cycles": _NON_NEGATIVE,
    "jitter": ("must be in [0, 1]", lambda v: 0 <= v <= 1),
}
_SUPERVISION_RULES = {
    "point_timeout_s": _POSITIVE,
    "point_event_budget": ("must be >= 1", lambda v: v >= 1),
    "max_retries": _NON_NEGATIVE,
    "backoff_base_s": _NON_NEGATIVE,
    "backoff_factor": ("must be >= 1", lambda v: v >= 1),
    "backoff_max_s": _NON_NEGATIVE,
    "poll_interval_s": _POSITIVE,
}


def _known_fields(cls) -> set[str]:
    return {f.name for f in dataclasses.fields(cls)}


def _check_rules(report: LintReport, data: dict, rules: dict, prefix: str) -> None:
    for name, (msg, predicate) in rules.items():
        value = data.get(name)
        if value is None or isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if not predicate(value):
            report.add(Severity.ERROR, "out-of-range", f"{prefix}.{name}",
                       f"{msg}, got {value}")


def _check_unknown_keys(report: LintReport, data: dict, known: set[str],
                        prefix: str) -> None:
    for key in data:
        if key not in known:
            hint = _closest(key, known)
            suffix = f" (did you mean {hint!r}?)" if hint else ""
            report.add(Severity.ERROR, "unknown-parameter",
                       f"{prefix}.{key}" if prefix else key,
                       f"unknown parameter{suffix}")


def _closest(key: str, known: set[str]) -> Optional[str]:
    """Cheap typo suggestion: a known key sharing a long prefix/suffix."""
    candidates = [k for k in known
                  if k.startswith(key[:4]) or k.endswith(key[-4:])]
    return min(candidates, key=len) if candidates else None


# -- config-level lint ----------------------------------------------------------


def _lint_link(report: LintReport, link: LinkConfig, flit_bytes: int,
               prefix: str) -> None:
    if link.packet_size_bytes < flit_bytes:
        report.add(
            Severity.ERROR, "flit-packet-misalignment",
            f"{prefix}.packet_size_bytes",
            f"packet size {link.packet_size_bytes} B is smaller than the "
            f"{flit_bytes} B flit; every packet would waste a partial flit",
        )
    elif link.packet_size_bytes % flit_bytes != 0:
        report.add(
            Severity.ERROR, "flit-packet-misalignment",
            f"{prefix}.packet_size_bytes",
            f"packet size {link.packet_size_bytes} B is not a multiple of "
            f"the {flit_bytes} B flit width; the detailed backend would pad "
            f"every packet's tail flit",
        )
    if (link.message_quantum_bytes is not None
            and link.message_quantum_bytes > link.packet_size_bytes):
        # INFO only: the shipped Table III defaults have a 512 B quantum
        # over 256 B packets, so this is expected on the paper platforms.
        report.add(
            Severity.INFO, "quantum-exceeds-packet",
            f"{prefix}.message_quantum_bytes",
            f"message quantum {link.message_quantum_bytes} B exceeds the "
            f"packet size {link.packet_size_bytes} B; endpoint overheads "
            f"are charged per quantum, coarser than packetization",
        )
    if link.efficiency < 0.5:
        report.add(
            Severity.WARNING, "low-link-efficiency",
            f"{prefix}.efficiency",
            f"efficiency {link.efficiency} means headers outweigh payload; "
            f"Table III quotes 0.94",
        )


def lint_config(config: SimulationConfig, source: str = "") -> list[Finding]:
    """Cross-parameter consistency checks on a constructed config."""
    report = LintReport(source=source)
    network = config.network
    if network is not None:
        if network.flit_width_bits % 8 != 0:
            report.add(
                Severity.ERROR, "flit-width-not-byte-aligned",
                "network.flit_width_bits",
                f"flit width {network.flit_width_bits} bits is not a whole "
                f"number of bytes",
            )
        else:
            flit_bytes = network.flit_width_bytes
            _lint_link(report, network.local_link, flit_bytes,
                       "network.local_link")
            _lint_link(report, network.package_link, flit_bytes,
                       "network.package_link")
        if (network.local_link.bandwidth_gbps
                < network.package_link.bandwidth_gbps):
            report.add(
                Severity.WARNING, "inverted-bandwidth-hierarchy",
                "network.local_link.bandwidth_gbps",
                f"intra-package links ({network.local_link.bandwidth_gbps} "
                f"GB/s) are slower than inter-package links "
                f"({network.package_link.bandwidth_gbps} GB/s); the paper's "
                f"hierarchy assumes the opposite",
            )
    if not 1e6 <= config.clock.frequency_hz <= 1e11:
        report.add(
            Severity.WARNING, "implausible-clock", "clock.frequency_hz",
            f"{config.clock.frequency_hz} Hz is outside the plausible "
            f"1 MHz - 100 GHz range; check the cycle <-> seconds mapping",
        )
    if config.system.dispatch_threshold > config.system.dispatch_batch:
        report.add(
            Severity.INFO, "dispatch-threshold-exceeds-batch",
            "system.dispatch_threshold",
            f"threshold {config.system.dispatch_threshold} > batch "
            f"{config.system.dispatch_batch}: the dispatcher refills less "
            f"than one threshold per round",
        )
    return report.findings


def lint_config_dict(
    data: dict, source: str = ""
) -> tuple[Optional[SimulationConfig], list[Finding]]:
    """Lint a raw SimulationConfig dict, then construct it.

    Raw-level rules fire first so a bad file produces parameter-anchored
    findings; construction catches whatever the rules do not cover.
    """
    report = LintReport(source=source)
    _check_unknown_keys(report, data,
                        {"system", "network", "compute", "clock", "num_passes"},
                        "")
    for section, cls in _SECTION_TYPES.items():
        sub = data.get(section)
        if isinstance(sub, dict):
            _check_unknown_keys(report, sub, _known_fields(cls), section)
    network_data = data.get("network")
    if isinstance(network_data, dict):
        _check_unknown_keys(report, network_data, _known_fields(NetworkConfig),
                            "network")
        _check_rules(report, network_data, _NETWORK_RULES, "network")
        for link_key in ("local_link", "package_link"):
            link_data = network_data.get(link_key)
            if isinstance(link_data, dict):
                _check_unknown_keys(report, link_data,
                                    _known_fields(LinkConfig),
                                    f"network.{link_key}")
                _check_rules(report, link_data, _LINK_RULES,
                             f"network.{link_key}")
    system_data = data.get("system")
    if isinstance(system_data, dict):
        _check_rules(report, system_data, _SYSTEM_RULES, "system")
        transport_data = system_data.get("transport")
        if isinstance(transport_data, dict):
            from repro.config.parameters import TransportConfig

            _check_unknown_keys(report, transport_data,
                                _known_fields(TransportConfig),
                                "system.transport")
            _check_rules(report, transport_data, _TRANSPORT_RULES,
                         "system.transport")
            base = transport_data.get("backoff_base_cycles")
            cap = transport_data.get("backoff_max_cycles")
            if (isinstance(base, (int, float)) and isinstance(cap, (int, float))
                    and not isinstance(base, bool) and not isinstance(cap, bool)
                    and cap < base):
                report.add(
                    Severity.ERROR, "out-of-range",
                    "system.transport.backoff_max_cycles",
                    f"backoff cap {cap} is below the base backoff {base}",
                )
    if report.errors:
        return None, report.findings

    try:
        config = config_from_dict(data)
    except ConfigError as exc:
        report.add(Severity.ERROR, "config-error", "config", str(exc))
        return None, report.findings
    report.extend(lint_config(config, source=source))
    return config, report.findings


# -- topology lint --------------------------------------------------------------


def parse_shape(spec: str) -> tuple[int, ...]:
    """Parse an ``MxN`` / ``MxNxK`` shape string (lint-friendly errors)."""
    try:
        return tuple(int(tok) for tok in str(spec).lower().split("x"))
    except ValueError:
        raise ConfigError(
            f"bad shape {spec!r}; expected e.g. 2x4x4 or 4x16"
        ) from None


def lint_fabric_structure(topology, source: str = "") -> list[Finding]:
    """Structural checks on a built logical topology.

    Verifies the invariants collective composition depends on: the
    logical→physical mapping (``group_of``) assigns every NPU to exactly
    one registered group per dimension, group sizes are uniform and their
    product matches the NPU count, every group's channels actually span
    its members, and channel counts are uniform across groups.
    """
    report = LintReport(source=source)
    fabric = topology.fabric

    product = 1
    for dim in fabric.dimensions:
        groups = fabric.groups(dim)
        membership: dict = {g: set() for g in groups}
        unmapped: list[int] = []
        for npu in range(fabric.num_npus):
            try:
                group = fabric.group_of(dim, npu)
            except ReproError:
                unmapped.append(npu)
                continue
            if group not in membership:
                report.add(
                    Severity.ERROR, "mapping-not-bijective",
                    f"topology.{dim.value}",
                    f"NPU {npu} maps to group {group}, which has no "
                    f"registered channels",
                )
                continue
            membership[group].add(npu)
        if unmapped:
            report.add(
                Severity.ERROR, "mapping-not-bijective",
                f"topology.{dim.value}",
                f"NPUs {unmapped} map to no {dim.value} group; the "
                f"logical→physical mapping must cover every NPU exactly once",
            )
        empty = [g for g, members in membership.items() if not members]
        if empty:
            report.add(
                Severity.ERROR, "mapping-not-bijective",
                f"topology.{dim.value}",
                f"groups {empty} have channels but no member NPUs",
            )
        sizes = {len(members) for members in membership.values() if members}
        if len(sizes) > 1:
            report.add(
                Severity.ERROR, "non-uniform-groups",
                f"topology.{dim.value}",
                f"groups have different sizes: {sorted(sizes)}",
            )
        elif sizes:
            product *= min(sizes)

        for group, channels in groups.items():
            members = membership.get(group, set())
            for channel in channels:
                missing = sorted(members - set(channel.nodes))
                if missing:
                    report.add(
                        Severity.ERROR, "channel-missing-nodes",
                        f"topology.{dim.value}.group{group}",
                        f"channel {getattr(channel, 'name', channel)!r} does "
                        f"not reach group members {missing}",
                    )
        counts = {len(chs) for chs in groups.values()}
        if len(counts) != 1:
            report.add(
                Severity.ERROR, "non-uniform-channels",
                f"topology.{dim.value}",
                f"groups expose different channel counts: {sorted(counts)}",
            )

    if product != fabric.num_npus:
        report.add(
            Severity.ERROR, "dim-product-mismatch", "topology.shape",
            f"logical group sizes multiply to {product} but the fabric has "
            f"{fabric.num_npus} NPUs",
        )
    return report.findings


def lint_topology(
    kind: TopologyKind,
    shape_dims: tuple[int, ...],
    config: SimulationConfig,
    expected_npus: Optional[int] = None,
    source: str = "",
) -> list[Finding]:
    """Shape/kind consistency, then full structural lint of the built fabric."""
    from repro.topology.logical import build_alltoall_topology, build_torus_topology

    report = LintReport(source=source)
    if kind is TopologyKind.TORUS and len(shape_dims) != 3:
        report.add(
            Severity.ERROR, "shape-arity", "topology.shape",
            f"Torus shapes are MxNxK (3 dims), got {'x'.join(map(str, shape_dims))}",
        )
        return report.findings
    if kind is TopologyKind.ALLTOALL and len(shape_dims) != 2:
        report.add(
            Severity.ERROR, "shape-arity", "topology.shape",
            f"AllToAll shapes are MxN (2 dims), got {'x'.join(map(str, shape_dims))}",
        )
        return report.findings

    product = 1
    for d in shape_dims:
        product *= d
    if expected_npus is not None and product != expected_npus:
        report.add(
            Severity.ERROR, "dim-product-mismatch", "topology.shape",
            f"shape {'x'.join(map(str, shape_dims))} yields {product} NPUs "
            f"but the run declares expected_npus={expected_npus}",
        )

    network = config.network
    if network is None:
        report.add(
            Severity.ERROR, "missing-network", "network",
            "run spec builds a topology but the config carries no network section",
        )
        return report.findings
    try:
        if kind is TopologyKind.TORUS:
            topology = build_torus_topology(
                TorusShape(*shape_dims), network, config.system)
        else:
            topology = build_alltoall_topology(
                AllToAllShape(*shape_dims), network, config.system)
    except ReproError as exc:
        report.add(Severity.ERROR, "topology-error", "topology.shape", str(exc))
        return report.findings
    report.extend(lint_fabric_structure(topology, source=source))
    return report.findings


# -- fault lint -----------------------------------------------------------------


def lint_faults(data: dict, num_links: Optional[int] = None,
                source: str = "") -> list[Finding]:
    """Fault-injection parameters (see :mod:`repro.network.faults`)."""
    report = LintReport(source=source)
    _check_unknown_keys(report, data, FAULT_KEYS, "faults")
    factor = data.get("bandwidth_factor")
    if factor is not None and isinstance(factor, (int, float)):
        if not 0 < factor <= 1:
            report.add(
                Severity.ERROR, "fault-factor-out-of-range",
                "faults.bandwidth_factor",
                f"bandwidth degradation factor must be in (0, 1], got "
                f"{factor}; 1.0 means no degradation, values above it would "
                f"*upgrade* the link",
            )
    extra = data.get("extra_latency_cycles")
    if extra is not None and isinstance(extra, (int, float)) and extra < 0:
        report.add(
            Severity.ERROR, "fault-factor-out-of-range",
            "faults.extra_latency_cycles",
            f"extra latency must be >= 0, got {extra}",
        )
    count = data.get("count")
    if count is not None and isinstance(count, int):
        if count < 0:
            report.add(Severity.ERROR, "fault-factor-out-of-range",
                       "faults.count", f"fault count must be >= 0, got {count}")
        elif num_links is not None and count > num_links:
            report.add(
                Severity.ERROR, "fault-count-exceeds-links", "faults.count",
                f"cannot degrade {count} links of a fabric with {num_links}",
            )
    kind = data.get("kind")
    if kind is not None and kind not in ("local", "package"):
        report.add(Severity.ERROR, "unknown-parameter", "faults.kind",
                   f"link kind must be 'local' or 'package', got {kind!r}")
    seed = data.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        report.add(Severity.ERROR, "fault-factor-out-of-range", "faults.seed",
                   f"fault seed must be an integer, got {seed!r}")
    return report.findings


def lint_fault_schedule(data: Any, source: str = "") -> list[Finding]:
    """Dynamic fault-schedule lint (see :mod:`repro.network.fault_schedule`).

    Validates the document shape, every event's keys/action/operands, and
    cross-event consistency (a ``link_up`` for a link that was never taken
    down is a warning — usually a typo in the endpoint pair).
    """
    from repro.network.fault_schedule import (
        EVENT_KEYS,
        SCHEDULE_KEYS,
        FaultEvent,
        FaultSchedule,
    )

    report = LintReport(source=source)
    if not isinstance(data, dict):
        report.add(Severity.ERROR, "malformed-spec", "fault_schedule",
                   f"fault schedule must be an object, got {type(data).__name__}")
        return report.findings
    _check_unknown_keys(report, data, SCHEDULE_KEYS, "fault_schedule")
    seed = data.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        report.add(Severity.ERROR, "fault-factor-out-of-range",
                   "fault_schedule.seed",
                   f"fault-schedule seed must be an integer, got {seed!r}")
    events = data.get("events", [])
    if not isinstance(events, list):
        report.add(Severity.ERROR, "malformed-spec", "fault_schedule.events",
                   "events must be a list")
        return report.findings

    downed: set[tuple[int, int]] = set()
    for i, entry in enumerate(sorted(
            (e for e in events if isinstance(e, dict)),
            key=lambda e: e.get("time", 0)
            if isinstance(e.get("time", 0), (int, float)) else 0)):
        prefix = f"fault_schedule.events[{i}]"
        _check_unknown_keys(report, entry, EVENT_KEYS, prefix)
        try:
            event = FaultEvent.from_dict(
                {k: v for k, v in entry.items() if k in EVENT_KEYS})
        except ConfigError as exc:
            report.add(Severity.ERROR, "fault-event-invalid", prefix, str(exc))
            continue
        if event.action.value == "link_down":
            downed.add(event.link)
        elif event.action.value == "link_up":
            if event.link not in downed:
                report.add(
                    Severity.WARNING, "fault-link-up-without-down", prefix,
                    f"link_up for {event.link[0]}->{event.link[1]} without a "
                    f"preceding link_down (endpoint-pair typo?)",
                )
            else:
                downed.discard(event.link)
    for entry in events:
        if not isinstance(entry, dict):
            report.add(Severity.ERROR, "fault-event-invalid",
                       "fault_schedule.events",
                       f"events must be objects, got {type(entry).__name__}")
    if report.ok(strict=False):
        # Shape is valid; let the constructor catch anything else.
        try:
            FaultSchedule.from_dict(data)
        except ConfigError as exc:
            report.add(Severity.ERROR, "fault-event-invalid", "fault_schedule",
                       str(exc))
    return report.findings


def lint_supervision(data: Any, source: str = "") -> list[Finding]:
    """Lint a run spec's ``supervision`` section (docs/SUPERVISION.md).

    Per-field range rules and the ``on_poison`` enum fire first with
    parameter-anchored findings; a clean section is then constructed via
    :class:`repro.parallel.SupervisionPolicy` so every cross-field
    ConfigError the runtime would raise surfaces here instead.
    """
    report = LintReport(source=source)
    if not isinstance(data, dict):
        report.add(Severity.ERROR, "malformed-spec", "supervision",
                   f"supervision section must be an object, got "
                   f"{type(data).__name__}")
        return report.findings
    _check_unknown_keys(report, data, SUPERVISION_KEYS, "supervision")
    _check_rules(report, data, _SUPERVISION_RULES, "supervision")
    on_poison = data.get("on_poison")
    if on_poison is not None and on_poison not in ("quarantine", "fail"):
        report.add(Severity.ERROR, "out-of-range", "supervision.on_poison",
                   f"must be 'quarantine' or 'fail', got {on_poison!r}")
    if report.ok(strict=False):
        from repro.parallel.supervisor import SupervisionPolicy

        try:
            SupervisionPolicy(
                **{k: v for k, v in data.items() if k in SUPERVISION_KEYS})
        except (ConfigError, TypeError) as exc:
            report.add(Severity.ERROR, "supervision-invalid", "supervision",
                       str(exc))
    return report.findings


# -- search-space specs ---------------------------------------------------------

#: Axes whose values are plain integers >= 1 (rings, switches, chunks).
_INT_AXES = ("chunks", "local_rings", "horizontal_rings", "vertical_rings",
             "global_switches")


def lint_search_space(data: Any, source: str = "") -> list[Finding]:
    """Lint a search-space spec for `astra-repro search` (docs/SEARCH.md).

    Raw-level checks fire first (unknown keys, empty axes, out-of-range
    bounds) so a bad file yields parameter-anchored findings; a clean
    document is then constructed via
    :class:`repro.search.space.SearchSpace` to catch everything else
    (shape/NPU mismatches, infeasible constraints).
    """
    from repro.analytical.cost_models import CostTable
    from repro.search.space import (
        AXIS_NAMES,
        COLLECTIVE_NAMES,
        CONSTRAINT_KEYS,
        SPACE_KEYS,
        SearchSpace,
    )

    report = LintReport(source=source)
    if not isinstance(data, dict):
        report.add(Severity.ERROR, "malformed-spec", "",
                   f"search space must be a JSON object, got "
                   f"{type(data).__name__}")
        return report.findings
    _check_unknown_keys(report, data, SPACE_KEYS, "")

    num_npus = data.get("num_npus")
    if num_npus is None:
        report.add(Severity.ERROR, "missing-parameter", "num_npus",
                   "search space needs an integer num_npus")
    elif isinstance(num_npus, bool) or not isinstance(num_npus, int) \
            or num_npus < 2:
        report.add(Severity.ERROR, "out-of-range", "num_npus",
                   f"must be an integer >= 2, got {num_npus!r}")

    collective = data.get("collective")
    if collective is not None and collective not in COLLECTIVE_NAMES:
        report.add(Severity.ERROR, "unknown-parameter", "collective",
                   f"unknown collective {collective!r}; expected one of "
                   f"{', '.join(COLLECTIVE_NAMES)}")

    size = data.get("size_bytes")
    if size is not None and (isinstance(size, bool)
                             or not isinstance(size, (int, float))
                             or size <= 0):
        report.add(Severity.ERROR, "out-of-range", "size_bytes",
                   f"must be positive, got {size!r}")

    axes = data.get("axes")
    if axes is not None:
        if not isinstance(axes, dict):
            report.add(Severity.ERROR, "malformed-spec", "axes",
                       "axes must be an object mapping axis -> values")
        else:
            _check_unknown_keys(report, axes, set(AXIS_NAMES), "axes")
            for name, values in axes.items():
                if name not in AXIS_NAMES:
                    continue
                if not isinstance(values, list):
                    report.add(Severity.ERROR, "malformed-spec",
                               f"axes.{name}", "axis values must be a list")
                elif not values:
                    report.add(Severity.ERROR, "empty-axis", f"axes.{name}",
                               "axis has no values; drop it to use the "
                               "default range")
                elif name in _INT_AXES:
                    for v in values:
                        if isinstance(v, bool) or not isinstance(v, int) \
                                or v < 1:
                            report.add(Severity.ERROR, "out-of-range",
                                       f"axes.{name}",
                                       f"values must be integers >= 1, "
                                       f"got {v!r}")

    constraints = data.get("constraints")
    if constraints is not None:
        if not isinstance(constraints, dict):
            report.add(Severity.ERROR, "malformed-spec", "constraints",
                       "constraints must be an object")
        else:
            _check_unknown_keys(report, constraints, CONSTRAINT_KEYS,
                                "constraints")
            _check_rules(report, constraints, {
                "max_links_per_npu": ("must be >= 1", lambda v: v >= 1),
                "max_platform_dollars": ("must be positive", lambda v: v > 0),
            }, "constraints")

    cost = data.get("cost")
    if cost is not None:
        if not isinstance(cost, dict):
            report.add(Severity.ERROR, "malformed-spec", "cost",
                       "cost must be an object of CostTable fields")
        else:
            _check_unknown_keys(report, cost, CostTable.field_names(), "cost")
            _check_rules(report, cost, {
                name: ("must be >= 0", lambda v: v >= 0)
                for name in CostTable.field_names()
            }, "cost")

    if report.errors:
        return report.findings
    try:
        SearchSpace.from_dict(data, source=source)
    except ConfigError as exc:
        report.add(Severity.ERROR, "search-space-error", "", str(exc))
    return report.findings


# -- run specs and files --------------------------------------------------------


def lint_run_spec(data: Any, source: str = "") -> LintReport:
    """Lint one run-spec (or bare SimulationConfig) dictionary.

    A run spec bundles a ``config`` with the pieces a config alone cannot
    express: the topology shape the run will build, the NPU count the
    workload expects, and any fault-injection plan.
    """
    report = LintReport(source=source)
    if not isinstance(data, dict):
        report.add(Severity.ERROR, "malformed-spec", "",
                   f"expected a JSON object, got {type(data).__name__}")
        return report

    if set(data) <= {"seed", "events"} and "events" in data:
        # A bare fault-schedule document (the --fault-schedule format).
        report.extend(lint_fault_schedule(data, source=source))
        return report

    if "axes" in data or ("num_npus" in data and "config" not in data):
        # A search-space document (the `astra-repro search --space` format).
        report.extend(lint_search_space(data, source=source))
        return report

    if "op" in data and "size_mb" in data and "config" not in data:
        # A service payload (the `astra-repro serve` POST body format):
        # the same strict schema the daemon enforces at admission, so a
        # payload can be linted offline before it is ever submitted.
        from repro.service.schema import lint_payload

        report.extend(lint_payload(data, source=source))
        return report

    is_bare_config = "system" in data and "config" not in data
    if is_bare_config:
        config_data, spec = data, {}
    else:
        spec = data
        _check_unknown_keys(report, spec, RUN_SPEC_KEYS, "")
        config_data = spec.get("config")

    if config_data is not None:
        config, findings = lint_config_dict(config_data, source=source)
        report.extend(findings)
    else:
        from repro.config.presets import paper_simulation_config

        config = paper_simulation_config()

    topo_data = spec.get("topology")
    if topo_data is not None and config is not None:
        if not isinstance(topo_data, dict):
            report.add(Severity.ERROR, "malformed-spec", "topology",
                       "topology section must be an object with kind/shape")
        else:
            _check_unknown_keys(report, topo_data, TOPOLOGY_KEYS, "topology")
            try:
                kind = TopologyKind(topo_data.get("kind", "Torus"))
                dims = parse_shape(topo_data.get("shape", ""))
            except (ConfigError, ValueError) as exc:
                report.add(Severity.ERROR, "malformed-spec", "topology", str(exc))
            else:
                report.extend(lint_topology(
                    kind, dims, config,
                    expected_npus=spec.get("expected_npus"),
                    source=source,
                ))

    faults = spec.get("faults")
    if faults is not None:
        if not isinstance(faults, dict):
            report.add(Severity.ERROR, "malformed-spec", "faults",
                       "faults section must be an object")
        else:
            num_links = _count_links(spec, config)
            report.extend(lint_faults(faults, num_links=num_links, source=source))

    schedule = spec.get("fault_schedule")
    if schedule is not None:
        report.extend(lint_fault_schedule(schedule, source=source))

    supervision = spec.get("supervision")
    if supervision is not None:
        report.extend(lint_supervision(supervision, source=source))
    return report


def _count_links(spec: dict, config: Optional[SimulationConfig]) -> Optional[int]:
    """Total fabric links when the spec describes a buildable topology."""
    topo_data = spec.get("topology")
    if config is None or config.network is None or not isinstance(topo_data, dict):
        return None
    from repro.topology.logical import build_alltoall_topology, build_torus_topology

    try:
        kind = TopologyKind(topo_data.get("kind", "Torus"))
        dims = parse_shape(topo_data.get("shape", ""))
        if kind is TopologyKind.TORUS:
            topology = build_torus_topology(TorusShape(*dims), config.network,
                                            config.system)
        else:
            topology = build_alltoall_topology(AllToAllShape(*dims),
                                               config.network, config.system)
    except (ReproError, ValueError, TypeError):
        return None
    return topology.fabric.total_links()


def lint_spec_file(path: str) -> LintReport:
    """Lint one JSON config / run-spec file from disk."""
    report = LintReport(source=str(path))
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as exc:
        report.add(Severity.ERROR, "unreadable-file", "", str(exc))
        return report
    except json.JSONDecodeError as exc:
        report.add(Severity.ERROR, "invalid-json", "", str(exc))
        return report
    return lint_run_spec(data, source=str(path))


# -- platforms and presets ------------------------------------------------------


def lint_platform(platform, source: str = "") -> LintReport:
    """Lint a harness :class:`PlatformSpec`: its config and its built topology."""
    report = LintReport(source=source or platform.name)
    report.extend(lint_config(platform.config, source=report.source))
    try:
        topology = platform.topology_builder(platform.config.system)
    except ReproError as exc:
        report.add(Severity.ERROR, "topology-error", "topology", str(exc))
        return report
    report.extend(lint_fabric_structure(topology, source=report.source))
    return report


def lint_presets() -> list[LintReport]:
    """Lint every shipped preset platform (the CI gate)."""
    from repro.config.parameters import (
        AllToAllShape as A2A,
        CollectiveAlgorithm,
        TorusShape as Torus,
    )
    from repro.harness.runners import alltoall_platform, torus_platform

    platforms = [
        torus_platform(Torus(2, 4, 4)),
        torus_platform(Torus(4, 4, 4), algorithm=CollectiveAlgorithm.ENHANCED),
        torus_platform(Torus(1, 8, 1), symmetric=True),
        alltoall_platform(A2A(4, 16)),
        alltoall_platform(A2A(2, 4), algorithm=CollectiveAlgorithm.ENHANCED,
                          symmetric=True),
    ]
    return [lint_platform(p) for p in platforms]
