"""AST-based determinism lint over the simulator's own source.

The repo's core contract — bit-identical results across serial/parallel
execution, checkpoint/resume replay and the content-addressed run cache —
rests on the source never consulting anything outside the simulation
state.  This pass finds the usual ways that contract breaks *before* a
run does, by walking each module's AST with a small set of rules:

``unseeded-random`` (error)
    Module-level ``random`` / ``numpy.random`` functions draw from
    process-global RNG state; ``random.Random()`` / ``default_rng()``
    without a seed draw from the OS.  Simulation code must use a seeded
    instance owned by the configuration.
``wall-clock`` (error)
    ``time.time()`` / ``time.perf_counter()`` / ``datetime.now()`` etc.
    read the host clock; any simulation decision based on them differs
    run to run.  (Wall-clock profiling is fine — in the profiling module,
    under an explicit suppression.)
``unordered-iteration`` (error)
    Iterating a ``set`` / ``frozenset`` in an order-sensitive position
    (``for`` loops, ``list()`` / ``enumerate()`` / ``"".join()``,
    list/dict comprehensions, ``set.pop()``).  Set iteration order
    depends on ``PYTHONHASHSEED`` for str keys and on allocation history
    in general; feeding it into event scheduling or stats corrupts
    determinism silently.  Order-insensitive consumers (``sorted``,
    ``len``, ``sum``, ``min``/``max``, ``any``/``all``, set algebra) are
    allowed.
``id-ordering`` (error)
    Sorting or comparing by ``id()`` orders objects by allocation
    address — different every process.  (Using ``id()`` as an identity
    *key* is fine; ordering by it is not.)
``float-accumulation`` (warning)
    ``+=`` of cycle/delay quantities in loops or stats attributes is
    order-sensitive in the last ulp; when the accumulation order can be
    perturbed (parallel delivery, schedule ties), sums diverge.  Collect
    values and reduce with ``math.fsum`` (exact, order-independent).
``mutable-default-arg`` (error)
    A mutable default is shared across calls — state leaks between
    supposedly independent simulations.
``unused-suppression`` (warning)
    A ``det: allow[...]`` comment whose rule no longer fires on that
    line; stale suppressions hide future regressions.

Suppression syntax (checked, see ``unused-suppression``)::

    x = time.perf_counter()  # det: allow[wall-clock] profiling only
    # det: allow[unordered-iteration] order reduced with fsum below
    total = fsum(v for v in values)

    # det: allow-file[wall-clock] this module measures host time

A comment suppresses the named rule(s) on its own line or, for a
comment-only line, on the line directly below.  ``allow-file`` applies
to the whole file.  Findings flow through the standard
:mod:`repro.sanitize.findings` machinery and surface via
``astra-repro analyze --source`` (docs/DETERMINISM.md).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ConfigError
from repro.sanitize.findings import Finding, LintReport, Severity

#: All rule codes this pass can emit, in catalog order.
RULE_CODES = (
    "unseeded-random",
    "wall-clock",
    "unordered-iteration",
    "id-ordering",
    "float-accumulation",
    "mutable-default-arg",
    "unused-suppression",
    "syntax-error",
)

_SEVERITIES = {
    "unseeded-random": Severity.ERROR,
    "wall-clock": Severity.ERROR,
    "unordered-iteration": Severity.ERROR,
    "id-ordering": Severity.ERROR,
    "float-accumulation": Severity.WARNING,
    "mutable-default-arg": Severity.ERROR,
    "unused-suppression": Severity.WARNING,
    "syntax-error": Severity.ERROR,
}

#: ``random`` module functions that draw from the process-global stream.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "getrandbits", "randbytes", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "binomialvariate", "seed",
}

#: ``numpy.random`` names that are fine to *call* (constructors that take
#: an explicit seed; seeding is checked separately at the call site).
_NUMPY_SEEDED_CTORS = {"default_rng", "Generator", "RandomState",
                      "SeedSequence", "PCG64", "Philox", "MT19937", "SFC64"}

#: Host-clock reads, as resolved dotted names.
_WALL_CLOCK_FNS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.thread_time", "time.thread_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Builtins whose consumption of an iterable is order-insensitive.
_ORDER_INSENSITIVE = {"sorted", "len", "sum", "min", "max", "any", "all",
                      "set", "frozenset", "bool"}

#: Callables that materialize or expose iteration order.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "iter", "enumerate", "reversed",
                          "next", "zip", "map", "filter"}

#: Set methods returning another set (algebra — order never escapes).
_SET_ALGEBRA_METHODS = {"union", "intersection", "difference",
                        "symmetric_difference", "copy"}

#: Name tokens that mark a quantity as simulated-time arithmetic.
_TIME_TOKENS = {"cycle", "cycles", "time", "delay", "delays", "latency",
                "latencies", "busy"}

_ALLOW_RE = re.compile(r"#\s*det:\s*allow\[([^\]]*)\]")
_ALLOW_FILE_RE = re.compile(r"#\s*det:\s*allow-file\[([^\]]*)\]")


@dataclass
class _Suppression:
    """One ``det: allow[...]`` comment."""

    line: int
    codes: tuple[str, ...]
    file_level: bool = False
    comment_only: bool = False
    used: bool = False


def _parse_codes(raw: str) -> tuple[str, ...]:
    return tuple(tok.strip() for tok in raw.split(",") if tok.strip())


def _collect_suppressions(text: str) -> list[_Suppression]:
    """Find ``det: allow`` markers in *real* comments only.

    Tokenizing (rather than regexing raw lines) keeps suppression examples
    inside docstrings — like the ones in this module's own docstring —
    from registering as live suppressions.
    """
    out: list[_Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line_no = tok.start[0]
            m = _ALLOW_FILE_RE.search(tok.string)
            if m:
                out.append(_Suppression(line=line_no,
                                        codes=_parse_codes(m.group(1)),
                                        file_level=True))
                continue
            m = _ALLOW_RE.search(tok.string)
            if m:
                comment_only = tok.line.lstrip().startswith("#")
                out.append(_Suppression(line=line_no,
                                        codes=_parse_codes(m.group(1)),
                                        comment_only=comment_only))
    except tokenize.TokenError:  # pragma: no cover - parse already failed
        pass
    return out


class _Suppressions:
    """Line- and file-scoped suppressions with usage tracking."""

    def __init__(self, text: str):
        self._all = _collect_suppressions(text)
        self._by_line: dict[int, list[_Suppression]] = {}
        self._file_level: list[_Suppression] = []
        for sup in self._all:
            if sup.file_level:
                self._file_level.append(sup)
            else:
                self._by_line.setdefault(sup.line, []).append(sup)
                if sup.comment_only:
                    # A comment-only line guards the line below it.
                    self._by_line.setdefault(sup.line + 1, []).append(sup)

    def suppresses(self, code: str, line: int) -> bool:
        for sup in self._file_level:
            if code in sup.codes:
                sup.used = True
                return True
        for sup in self._by_line.get(line, ()):
            if code in sup.codes:
                sup.used = True
                return True
        return False

    def unused(self) -> list[_Suppression]:
        return [sup for sup in self._all if not sup.used]


def _is_set_annotation(node: Optional[ast.expr]) -> bool:
    """Whether an annotation expression denotes a set type."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Attribute):  # typing.Set[...]
        return node.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _is_set_annotation(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return False
    return False


def _name_tokens(name: str) -> set[str]:
    return set(name.lower().split("_"))


class _DeterminismVisitor(ast.NodeVisitor):
    """One pass over a module AST, emitting determinism findings."""

    def __init__(self, report: LintReport, suppressions: _Suppressions,
                 text: str, ignore: frozenset[str]):
        self.report = report
        self.suppressions = suppressions
        self.text = text
        self.ignore = ignore
        #: local import alias -> canonical dotted module/name prefix.
        self.aliases: dict[str, str] = {}
        #: attribute names assigned/annotated as sets anywhere in the file.
        self.set_attrs: set[str] = set()
        #: stack of per-scope sets of set-typed local names.
        self.scopes: list[set[str]] = [set()]
        self.loop_depth = 0

    # -- emission ------------------------------------------------------------

    def emit(self, code: str, node: ast.AST, message: str) -> None:
        if code in self.ignore:
            return
        line = getattr(node, "lineno", 0)
        if self.suppressions.suppresses(code, line):
            return
        snippet = ast.get_source_segment(self.text, node) or ""
        snippet = snippet.splitlines()[0].strip() if snippet else ""
        if snippet:
            message = f"{message} [`{snippet}`]"
        self.report.add(_SEVERITIES[code], code, f"L{line}", message, line=line)

    # -- import tracking -----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            module = "numpy.random" if node.module == "numpy.random" else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                self.aliases[alias.asname or alias.name] = f"{module}.{alias.name}"
        self.generic_visit(node)

    def _dotted(self, node: ast.expr) -> Optional[str]:
        """Resolve ``np.random.rand`` through import aliases to
        ``numpy.random.rand``; None when the root is not a plain name."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        # Normalize `numpy` to the canonical prefix for matching.
        return ".".join(reversed(parts))

    # -- scope handling ------------------------------------------------------

    def _prescan_scope(self, body: list[ast.stmt]) -> set[str]:
        """Flow-insensitive pass: local names that ever hold a set and are
        never rebound to an explicitly-ordered value."""
        set_names: set[str] = set()
        ordered_names: set[str] = set()

        class _Scan(ast.NodeVisitor):
            def visit_FunctionDef(self, _n):  # don't descend into nested scopes
                return

            visit_AsyncFunctionDef = visit_FunctionDef
            visit_Lambda = visit_FunctionDef
            visit_ClassDef = visit_FunctionDef

            def visit_Assign(inner, n: ast.Assign) -> None:
                for target in n.targets:
                    if isinstance(target, ast.Name):
                        if self._is_set_expr(n.value, set_names):
                            set_names.add(target.id)
                        else:
                            ordered_names.add(target.id)
                inner.generic_visit(n)

            def visit_AnnAssign(inner, n: ast.AnnAssign) -> None:
                if isinstance(n.target, ast.Name) and _is_set_annotation(n.annotation):
                    set_names.add(n.target.id)
                inner.generic_visit(n)

        scan = _Scan()
        for stmt in body:
            scan.visit(stmt)
        return set_names - ordered_names

    def _collect_set_attrs(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Attribute):
                if _is_set_annotation(node.annotation):
                    self.set_attrs.add(node.target.attr)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and \
                            self._is_set_expr(node.value, set()):
                        self.set_attrs.add(target.attr)

    # -- set-expression inference --------------------------------------------

    def _is_set_expr(self, node: ast.expr, local_sets: Optional[set[str]] = None) -> bool:
        if local_sets is None:
            local_sets = self.scopes[-1]
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _SET_ALGEBRA_METHODS and \
                    self._is_set_expr(node.func.value, local_sets):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)):
            return (self._is_set_expr(node.left, local_sets)
                    or self._is_set_expr(node.right, local_sets))
        if isinstance(node, ast.Name):
            return node.id in local_sets
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        return False

    def _flag_if_set_iter(self, node: ast.expr, context: str) -> None:
        if self._is_set_expr(node):
            self.emit(
                "unordered-iteration", node,
                f"set iteration order is not deterministic ({context}); "
                f"wrap in sorted(...) or restructure")

    # -- rule visitors -------------------------------------------------------

    def visit_FunctionDef(self, node) -> None:
        self._check_defaults(node)
        self.scopes.append(self._prescan_scope(node.body))
        outer_loops, self.loop_depth = self.loop_depth, 0
        self.generic_visit(node)
        self.loop_depth = outer_loops
        self.scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set,
                                           ast.ListComp, ast.DictComp, ast.SetComp))
            if not mutable and isinstance(default, ast.Call) and \
                    isinstance(default.func, ast.Name) and \
                    default.func.id in ("list", "dict", "set", "defaultdict",
                                        "deque", "bytearray", "Counter"):
                mutable = True
            if mutable:
                self.emit(
                    "mutable-default-arg", default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside")

    def visit_For(self, node: ast.For) -> None:
        self._flag_if_set_iter(node.iter, "for loop")
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    visit_AsyncFor = visit_For

    def visit_While(self, node: ast.While) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    def _visit_comprehension(self, node, kind: str) -> None:
        for comp in node.generators:
            self._flag_if_set_iter(comp.iter, kind)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        # Dict insertion order follows iteration order, and later dict
        # iteration exposes it — a set-fed DictComp is an ordered sink.
        self._visit_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # Only flag generators whose consumer is order-sensitive; the
        # consumer call site (visit_Call) decides.  Still flag nested
        # generators conservatively when fed straight into a for loop via
        # the comprehension's own iteration.
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # set -> set: order never escapes.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._check_random(dotted, node)
            self._check_wall_clock(dotted, node)
        self._check_order_sensitive_call(node)
        self._check_id_sort_key(node)
        self.generic_visit(node)

    def _check_random(self, dotted: str, node: ast.Call) -> None:
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            fn = parts[1]
            if fn in _GLOBAL_RANDOM_FNS:
                self.emit(
                    "unseeded-random", node,
                    f"random.{fn}() draws from process-global RNG state; "
                    f"use a seeded random.Random(seed) owned by the config")
            elif fn in ("Random", "SystemRandom") and not node.args and not node.keywords:
                self.emit(
                    "unseeded-random", node,
                    f"random.{fn}() without a seed is nondeterministic; "
                    f"pass an explicit seed")
        elif parts[:2] == ["numpy", "random"] and len(parts) == 3:
            fn = parts[2]
            if fn not in _NUMPY_SEEDED_CTORS:
                self.emit(
                    "unseeded-random", node,
                    f"numpy.random.{fn}() uses numpy's global RNG state; "
                    f"use numpy.random.default_rng(seed)")
            elif not node.args and not node.keywords:
                self.emit(
                    "unseeded-random", node,
                    f"numpy.random.{fn}() without a seed is entropy-seeded; "
                    f"pass an explicit seed")

    def _check_wall_clock(self, dotted: str, node: ast.Call) -> None:
        if dotted in _WALL_CLOCK_FNS:
            self.emit(
                "wall-clock", node,
                f"{dotted}() reads the host clock; simulation logic must "
                f"use simulated time (EventQueue.now)")

    def _check_order_sensitive_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_SENSITIVE_CALLS:
            for arg in node.args:
                inner = arg
                if isinstance(inner, ast.GeneratorExp):
                    for comp in inner.generators:
                        self._flag_if_set_iter(comp.iter, f"{func.id}() argument")
                    continue
                if self._is_set_expr(inner):
                    self._flag_if_set_iter(inner, f"{func.id}() argument")
        elif isinstance(func, ast.Attribute):
            if func.attr == "join":
                for arg in node.args:
                    if isinstance(arg, ast.GeneratorExp):
                        for comp in arg.generators:
                            self._flag_if_set_iter(comp.iter, "str.join() argument")
                    elif self._is_set_expr(arg):
                        self._flag_if_set_iter(arg, "str.join() argument")
            elif func.attr == "pop" and not node.args and \
                    self._is_set_expr(func.value):
                self.emit(
                    "unordered-iteration", node,
                    "set.pop() removes an arbitrary element; pop from a "
                    "sorted or explicitly-ordered structure")

    def _check_id_sort_key(self, node: ast.Call) -> None:
        is_sorter = (
            (isinstance(node.func, ast.Name) and node.func.id in
             ("sorted", "min", "max"))
            or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        )
        if not is_sorter:
            return
        for kw in node.keywords:
            if kw.arg != "key" or kw.value is None:
                continue
            value = kw.value
            if isinstance(value, ast.Name) and value.id == "id":
                self.emit(
                    "id-ordering", node,
                    "sorting by id() orders objects by allocation address "
                    "(different every process); sort by a semantic key")
            elif isinstance(value, ast.Lambda):
                for sub in ast.walk(value.body):
                    if isinstance(sub, ast.Call) and \
                            isinstance(sub.func, ast.Name) and sub.func.id == "id":
                        self.emit(
                            "id-ordering", node,
                            "sort key uses id(); allocation addresses are "
                            "not reproducible across processes")
                        break

    def visit_FormattedValue(self, node: ast.FormattedValue) -> None:
        # f"{some_set}" stringifies in iteration order — nondeterministic
        # text in error messages and reports.
        if self._is_set_expr(node.value):
            self.emit(
                "unordered-iteration", node.value,
                "formatting a set renders it in iteration order; format "
                "sorted(...) instead")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        ordering = any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                       for op in node.ops)
        if ordering:
            for operand in operands:
                if isinstance(operand, ast.Call) and \
                        isinstance(operand.func, ast.Name) and \
                        operand.func.id == "id" and len(operand.args) == 1:
                    self.emit(
                        "id-ordering", node,
                        "comparing id() values orders by allocation address; "
                        "compare a semantic key instead")
                    break
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            target = node.target
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name is not None and (_name_tokens(name) & _TIME_TOKENS):
                stats_like = isinstance(target, ast.Attribute) and \
                    name.endswith(("cycles", "delays", "_total"))
                if self.loop_depth > 0 or stats_like:
                    self.emit(
                        "float-accumulation", node,
                        f"incremental float accumulation into {name!r} is "
                        f"order-sensitive in the last ulp; collect values "
                        f"and reduce with math.fsum")
        self.generic_visit(node)

    # -- entry ---------------------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        self._collect_set_attrs(tree)
        self.scopes = [self._prescan_scope(tree.body)]
        self.visit(tree)
        for sup in self.suppressions.unused():
            if "unused-suppression" in self.ignore:
                continue
            codes = ",".join(sup.codes)
            self.report.add(
                _SEVERITIES["unused-suppression"], "unused-suppression",
                f"L{sup.line}",
                f"det: allow[{codes}] suppresses nothing here; remove the "
                f"stale comment", line=sup.line)


def lint_source_text(text: str, source: str = "<string>",
                     ignore: Iterable[str] = ()) -> LintReport:
    """Lint one module's source text; findings sorted most-severe first."""
    report = LintReport(source=source)
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        report.add(Severity.ERROR, "syntax-error", f"L{exc.lineno or 0}",
                   f"cannot parse: {exc.msg}", line=exc.lineno or 0)
        return report
    suppressions = _Suppressions(text)
    visitor = _DeterminismVisitor(report, suppressions, text,
                                  frozenset(ignore))
    visitor.run(tree)
    report.findings.sort(key=Finding.sort_key)
    return report


def lint_source_file(path: str, root: Optional[str] = None,
                     ignore: Iterable[str] = ()) -> LintReport:
    """Lint one ``.py`` file; ``root`` relativizes the report's source."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    source = os.path.relpath(path, root) if root else path
    return lint_source_text(text, source=source, ignore=ignore)


def iter_python_files(root: str) -> list[str]:
    """All ``.py`` files under ``root``, in sorted (deterministic) order."""
    if os.path.isfile(root):
        return [root]
    out: list[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                out.append(os.path.join(dirpath, name))
    return out


def lint_source_tree(root: str, ignore: Iterable[str] = ()) -> list[LintReport]:
    """Lint every Python file under ``root``; one report per file, in
    sorted path order.  ``root`` may also be a single file.

    A missing ``root`` raises :class:`~repro.errors.ConfigError` (usage
    error, CLI exit 2) rather than silently reporting a clean empty tree.
    """
    if not os.path.exists(root):
        raise ConfigError(f"source lint root does not exist: {root!r}")
    base = root if os.path.isdir(root) else os.path.dirname(root) or "."
    return [lint_source_file(path, root=base, ignore=ignore)
            for path in iter_python_files(root)]


def default_source_root() -> str:
    """The installed ``repro`` package directory — what
    ``astra-repro analyze --source`` lints when no path is given."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))
