"""Runtime invariant checkers for the event/network/collective stack.

One :class:`RuntimeSanitizer` instance follows a simulation run and
verifies the invariants the layers' composition depends on:

* **event engine** — :class:`SanitizedEventQueue` refuses time-travel
  (an event firing before the current time) and zero-delay livelock
  (an unbounded run of events at one timestamp);
* **network backends** — :class:`ConservationChecker` balances message
  sends against deliveries (fast backend) and flit/credit ledgers per
  message and per port/VC (detailed backend): a flit that never reaches
  its destination or a credit that is never returned is a leak;
* **collectives** — :class:`BarrierChecker` tracks every registered
  :class:`~repro.events.engine.CountdownBarrier`: over-arrival raises at
  the offending call, under-arrival is reported at quiescence;
* **system layer** — :meth:`RuntimeSanitizer.verify_quiescent` runs after
  the queue drains and raises :class:`~repro.errors.SanitizerError` with
  every outstanding imbalance; the system layer adds a wait-for summary
  when the queue drains with collectives still outstanding.

Everything here is opt-in: without ``--sanitize`` no checker object
exists and the default simulation path is byte-for-byte unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import SanitizerError
from repro.events.engine import EventQueue
from repro.sanitize.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.engine import CountdownBarrier
    from repro.network.detailed.flit import Flit
    from repro.network.detailed.router import HopContext, TxPort
    from repro.network.message import Message


@dataclass
class SanitizerConfig:
    """Knobs for the runtime checkers."""

    #: Maximum consecutive events executed at one timestamp before the
    #: run is declared a zero-delay livelock.
    livelock_threshold: int = 1_000_000
    #: Track per-message / per-port conservation ledgers.
    check_conservation: bool = True
    #: Track registered countdown barriers.
    check_barriers: bool = True

    def __post_init__(self) -> None:
        if self.livelock_threshold < 1:
            raise SanitizerError(
                f"livelock_threshold must be >= 1, got {self.livelock_threshold}"
            )


class SanitizedEventQueue(EventQueue):
    """An :class:`EventQueue` with time-travel and livelock detection.

    The base queue already rejects scheduling into the past; this variant
    additionally validates the heap discipline at *execution* time (a
    popped event must not fire before ``now`` — catches corrupted state
    that bypassed ``schedule_at``) and bounds how many events may execute
    at a single timestamp (zero-delay reschedule loops never advance time
    and would otherwise spin until ``max_events``).
    """

    def __init__(self, sanitizer: "RuntimeSanitizer"):
        super().__init__()
        self.sanitizer = sanitizer
        self._same_time_run = 0

    def step(self) -> bool:
        # Cancelled heads are drained through the shared _pop_live()
        # primitive so the pending/compaction bookkeeping cannot drift
        # from the base queue's drain paths, whichever mode (heap or
        # calendar) the queue is in.
        event = self._pop_live()
        if event is None:
            return False
        if event.time < self._now:
            raise SanitizerError(
                f"time-travel: event scheduled for t={event.time} fired "
                f"at t={self._now} (seq={event.seq}); the event heap is "
                f"corrupted"
            )
        if event.time == self._now:
            self._same_time_run += 1
            if self._same_time_run > self.sanitizer.config.livelock_threshold:
                raise SanitizerError(
                    f"zero-delay livelock: more than "
                    f"{self.sanitizer.config.livelock_threshold} events "
                    f"executed at t={self._now} without time advancing"
                )
        else:
            self._same_time_run = 0
        self._now = event.time
        self._events_processed += 1
        event.fired = True
        event.callback()
        if self.watcher is not None:
            self.watcher(self)
        return True


@dataclass
class _MessageLedger:
    """Per-message flit balance for the detailed backend."""

    label: str
    created: int = 0
    delivered: int = 0


class ConservationChecker:
    """Flit, credit and message conservation ledgers.

    Fast backend: every ``send`` must produce exactly one delivery.
    Detailed backend: every flit built for a message must arrive at the
    destination, and every credit taken from a port/VC must be released
    back — at quiescence all ledgers balance and all port queues drain.
    """

    def __init__(self) -> None:
        #: messages sent/delivered/dropped (both backends).  Drops are
        #: deliberate fault-layer losses; conservation balances as
        #: ``sent == delivered + dropped``.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: id(message) -> flit ledger; balanced entries are dropped eagerly
        #: so the ledger only holds in-flight messages.
        self._flit_ledgers: dict[int, _MessageLedger] = {}
        #: (link_id, vc) -> credits currently held downstream.
        self._credits_out: dict[tuple[int, int], int] = {}
        #: ports observed, for queue-drain checks at quiescence.
        self._ports: dict[int, "TxPort"] = {}

    # -- fast-backend message balance ------------------------------------------

    def message_sent(self, message: "Message") -> None:
        self.messages_sent += 1

    def message_delivered(self, message: "Message") -> None:
        self.messages_delivered += 1

    def message_dropped(self, message: "Message") -> None:
        self.messages_dropped += 1

    # -- detailed-backend flit balance -----------------------------------------

    def flits_created(self, message: "Message", count: int) -> None:
        ledger = self._ledger(message)
        ledger.created += count

    def flit_delivered(self, message: "Message") -> None:
        self.flits_delivered(message, 1)

    def flits_delivered(self, message: "Message", count: int) -> None:
        """Bulk delivery credit: one ledger update for ``count`` flits.

        Burst delivery batches (PR 10) land a whole message chunk in one
        dispatch; per-flit ledger calls there would undo the batching's
        point.  Identical accounting to ``count`` single calls.
        """
        ledger = self._ledger(message)
        ledger.delivered += count
        if ledger.delivered > ledger.created:
            raise SanitizerError(
                f"flit conservation: message {ledger.label} delivered "
                f"{ledger.delivered} flits but only {ledger.created} were "
                f"created (duplicated flit)"
            )
        if ledger.delivered == ledger.created:
            del self._flit_ledgers[id(message)]

    def _ledger(self, message: "Message") -> _MessageLedger:
        key = id(message)
        ledger = self._flit_ledgers.get(key)
        if ledger is None:
            ledger = _MessageLedger(
                label=f"{message.src}->{message.dst} tag={message.tag!r}"
            )
            self._flit_ledgers[key] = ledger
        return ledger

    # -- TxPort observer interface ---------------------------------------------

    def register_port(self, port: "TxPort") -> None:
        self._ports[port.link.link_id] = port

    def on_flit_enqueued(self, port: "TxPort", flit: "Flit",
                         ctx: "HopContext") -> None:
        pass  # queue population is re-derived at quiescence

    def on_flit_transmit(self, port: "TxPort", flit: "Flit",
                         ctx: "HopContext", credit_taken: bool) -> None:
        if credit_taken:
            key = (port.link.link_id, ctx.vc)
            self._credits_out[key] = self._credits_out.get(key, 0) + 1

    def on_credit_released(self, port: "TxPort", vc: int) -> None:
        key = (port.link.link_id, vc)
        outstanding = self._credits_out.get(key, 0) - 1
        if outstanding < 0:
            raise SanitizerError(
                f"credit conservation: {port.link!r} vc={vc} released a "
                f"credit that was never taken"
            )
        if outstanding == 0:
            self._credits_out.pop(key, None)
        else:
            self._credits_out[key] = outstanding

    # -- quiescence -------------------------------------------------------------

    def quiescence_findings(self) -> list[Finding]:
        findings: list[Finding] = []
        if self.messages_sent != self.messages_delivered + self.messages_dropped:
            findings.append(Finding(
                Severity.ERROR, "message-leak", "network",
                f"{self.messages_sent} messages sent but "
                f"{self.messages_delivered} delivered and "
                f"{self.messages_dropped} dropped by faults",
                source="runtime",
            ))
        for ledger in self._flit_ledgers.values():
            findings.append(Finding(
                Severity.ERROR, "flit-leak", "network.detailed",
                f"message {ledger.label} leaked "
                f"{ledger.created - ledger.delivered} of {ledger.created} "
                f"flits (never delivered)",
                source="runtime",
            ))
        for (link_id, vc), outstanding in sorted(self._credits_out.items()):
            findings.append(Finding(
                Severity.ERROR, "credit-leak", f"network.detailed.link{link_id}",
                f"vc={vc} holds {outstanding} credits that were never "
                f"released back upstream",
                source="runtime",
            ))
        for port in self._ports.values():
            queued = port.queued_flits()
            if queued:
                findings.append(Finding(
                    Severity.ERROR, "stuck-flits",
                    f"network.detailed.link{port.link.link_id}",
                    f"{queued} flits still queued on {port.link!r} after the "
                    f"event queue drained",
                    source="runtime",
                ))
        return findings


class BarrierChecker:
    """Tracks live :class:`CountdownBarrier` instances."""

    def __init__(self) -> None:
        self._live: dict[int, "CountdownBarrier"] = {}
        self.registered = 0
        self.fired_count = 0

    def register(self, barrier: "CountdownBarrier") -> None:
        self.registered += 1
        self._live[id(barrier)] = barrier

    def fired(self, barrier: "CountdownBarrier") -> None:
        self.fired_count += 1
        self._live.pop(id(barrier), None)

    def over_arrival(self, barrier: "CountdownBarrier") -> None:
        raise SanitizerError(
            f"barrier over-arrival: {barrier.name or 'anonymous barrier'} "
            f"expected {barrier.count} arrivals but received an extra one "
            f"after firing"
        )

    def quiescence_findings(self) -> list[Finding]:
        findings: list[Finding] = []
        for barrier in self._live.values():
            findings.append(Finding(
                Severity.ERROR, "barrier-under-arrival", "events.barrier",
                f"barrier {barrier.name or 'anonymous'} still waits for "
                f"{barrier.remaining} of {barrier.count} arrivals at "
                f"quiescence",
                source="runtime",
            ))
        return findings


class RuntimeSanitizer:
    """Aggregates the pluggable runtime checkers for one simulation run.

    Construct one, hand it to :class:`repro.system.sys_layer.System` (or
    build via ``PlatformSpec.build_system(sanitize=True)`` /
    ``astra-repro ... --sanitize``), and every instrumented layer reports
    into it.  Call :meth:`verify_quiescent` once the event queue drains.
    """

    def __init__(self, config: Optional[SanitizerConfig] = None):
        self.config = config if config is not None else SanitizerConfig()
        self.conservation = ConservationChecker()
        self.barriers = BarrierChecker()

    def make_event_queue(self) -> SanitizedEventQueue:
        return SanitizedEventQueue(self)

    def quiescence_findings(self) -> list[Finding]:
        findings: list[Finding] = []
        if self.config.check_conservation:
            findings.extend(self.conservation.quiescence_findings())
        if self.config.check_barriers:
            findings.extend(self.barriers.quiescence_findings())
        return findings

    def event_queue_findings(self, events: EventQueue) -> list[Finding]:
        """The pending-vs-heap invariant: the incrementally maintained live
        count must agree with an O(n) recount.  A drift means a cancellation
        was double-counted or lost (e.g. by a buggy compaction), which would
        silently skew every heap-pressure decision downstream."""
        findings: list[Finding] = []
        live = events.live_count()
        if live != events.pending:
            findings.append(Finding(
                Severity.ERROR, "pending-count-drift", "events.queue",
                f"event queue reports {events.pending} pending events but the "
                f"heap holds {live} live entries "
                f"(heap_size={events.heap_size}, after "
                f"{events.compactions} compaction(s))",
                source="runtime",
            ))
        return findings

    def verify_quiescent(self, system=None) -> None:
        """Raise :class:`SanitizerError` if any ledger is unbalanced.

        Call after the event queue drained; ``system`` (optional) adds a
        wait-for summary for outstanding collectives to the report and has
        its event queue audited for pending-count drift.
        """
        findings = self.quiescence_findings()
        if system is not None:
            findings.extend(self.event_queue_findings(system.events))
        if system is not None and not system.scheduler.idle:
            findings.append(Finding(
                Severity.ERROR, "drain-deadlock", "system.scheduler",
                "event queue drained with outstanding collectives:\n"
                + system.wait_for_summary(),
                source="runtime",
            ))
        if findings:
            raise SanitizerError(
                "runtime sanitizer found {} violation(s):\n{}".format(
                    len(findings), "\n".join(f.format() for f in findings)
                )
            )
