"""Schedule-perturbation race detector (dynamic determinism analysis).

The static linter (:mod:`repro.sanitize.source_lint`) finds *sources* of
nondeterminism in the code; this module hunts for *latent schedule races*
in the running simulation.  The event engine drains same-timestamp events
in FIFO order (the ``seq`` tie-break in
:class:`repro.events.engine.EventQueue`), which makes every run
reproducible — but reproducible is not the same as *race-free*.  If two
handlers at the same cycle produce a different simulation depending on
which fires first, the model's result encodes an accident of scheduling
order, and any refactor that reorders ``schedule()`` calls silently
changes published numbers.

The detector's contract: **a correct simulation must produce bit-identical
results under any permutation of same-timestamp event order.**  It proves
(or refutes) this empirically:

1. Run the probe once under plain FIFO — the baseline.
2. Run it ``trials`` more times, each with a :class:`SeededTieBreak`
   installed as the queue's ``tie_breaker`` hook: a seeded hash of the
   FIFO sequence number, ranked *between* timestamp and sequence, so
   same-timestamp events drain in a pseudo-random (but per-seed
   deterministic) permutation while cross-timestamp order is untouched.
3. Fingerprint each run's result payload (stats, cycles, breakdown) and
   compare against the baseline, bit-for-bit.

On a fingerprint mismatch the detector *bisects*: both schedules are
re-run with a tracing queue that records ``(time, seq, handler)`` per
executed event; because the two runs schedule identical events until the
first order-sensitive handler fires, the first position where the traces
differ is the race point.  Both runs are then replayed up to that event
and a :class:`DivergenceReport` is assembled with each side's wait-for
summary and diagnostics snapshot — the same bundle format the stall
watchdog writes (:mod:`repro.resilience.watchdog`), so the post-mortem
tooling is shared.

Probes
------
A *probe* is any object with a ``label`` and a ``run(queue, on_system=None)``
method that executes one simulation on the supplied event queue and
returns a JSON-serializable result payload.  :class:`CollectiveProbe`
wraps the harness's platform builders (``fig09.schedule_probes()`` /
``fig12.schedule_probes()`` build ready-made batches);
:class:`InjectedRaceProbe` is a deliberately order-sensitive simulation
shipped as the detector's self-test — it must *always* be caught.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.events.engine import EventQueue
from repro.sanitize.findings import LintReport, Severity

_MASK64 = (1 << 64) - 1

#: Default seed for trial derivation (the paper's year; any value works —
#: results must be identical under *every* seed, that is the point).
DEFAULT_SCHEDULE_SEED = 2020

#: Default number of permuted schedules to try per probe.
DEFAULT_SCHEDULE_TRIALS = 8


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a fast, well-distributed 64-bit integer mix.

    Used instead of ``hash()`` so tie-break ranks do not depend on
    ``PYTHONHASHSEED`` — the detector's own trials must be reproducible.
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def trial_seed(seed: int, trial: int) -> int:
    """Derive the per-trial tie-break seed from the base seed (trial >= 1)."""
    return _mix64((seed & _MASK64) + trial * 0x9E3779B97F4A7C15)


class SeededTieBreak:
    """A ``tie_breaker`` hook permuting same-timestamp event order.

    Ranks each event by a seeded mix of its FIFO sequence number.  The
    timestamp is deliberately *not* mixed in: float-to-int keying would
    make ranks sensitive to representation details, and the heap already
    orders by time first — only same-time events compete on rank.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = seed & _MASK64

    def __call__(self, time: float, seq: int) -> int:
        return _mix64(self.seed ^ _mix64(seq))

    def __repr__(self) -> str:
        return f"SeededTieBreak(seed=0x{self.seed:x})"


# -- probes ---------------------------------------------------------------------


@dataclass
class CollectiveProbe:
    """One harness collective run as a perturbation target.

    ``platform_builder`` is a zero-arg callable returning a fresh
    :class:`repro.harness.runners.PlatformSpec` (a fresh platform per
    trial keeps trials independent); ``op``/``size_bytes`` mirror
    :func:`repro.harness.runners.run_collective`.
    """

    label: str
    platform_builder: Callable[[], Any]
    op: Any
    size_bytes: float
    max_events: Optional[int] = None

    def run(self, queue: EventQueue, on_system=None) -> dict:
        platform = self.platform_builder()
        system = platform.build_system(events=queue)
        if on_system is not None:
            on_system(system)
        collective = system.request_collective(
            self.op, self.size_bytes, name=self.op.value)
        system.run_until_idle(max_events=self.max_events)
        return {
            "duration_cycles": collective.duration_cycles,
            "final_time": system.now,
            "events_processed": queue.events_processed,
            "breakdown": system.breakdown.rows(),
        }


class InjectedRaceProbe:
    """A deliberately order-sensitive simulation — the detector self-test.

    ``fan_out`` handlers are scheduled at the same timestamp; each folds
    its index into a non-commutative accumulator (``acc = acc * 31 + i``),
    so the result encodes the drain order.  Under FIFO the digest is
    fixed; under any non-identity permutation it differs — the detector
    must flag this probe and bisect to the first permuted event.
    """

    def __init__(self, fan_out: int = 6):
        self.label = "injected-race"
        self.fan_out = fan_out
        self._fired: list[int] = []

    def run(self, queue: EventQueue, on_system=None) -> dict:
        self._fired = []
        acc = 0

        def make(i: int):
            def fire() -> None:
                nonlocal acc
                acc = acc * 31 + i  # order-sensitive on purpose
                self._fired.append(i)
            return fire

        for i in range(self.fan_out):
            queue.schedule_at(10.0, make(i))
        queue.run()
        return {"digest": acc, "final_time": queue.now,
                "events_processed": queue.events_processed}

    def snapshot(self) -> dict:
        """Partial-run state for divergence bundles (no System to ask)."""
        return {"fired_order": list(self._fired)}


# -- tracing / replay -----------------------------------------------------------


class ScheduleReplayLimit(Exception):
    """Raised by the replay queue when it reaches its event limit.

    Control flow only — the bisection runner catches it after stepping a
    run up to the divergence point; it never escapes this module.
    """


def _describe_callback(cb: Callable) -> str:
    """A stable human-readable handler name for trace records."""
    while isinstance(cb, functools.partial):
        cb = cb.func
    qual = getattr(cb, "__qualname__", None)
    if qual is None:  # callable instance
        cls = type(cb)
        qual = cls.__qualname__
        mod = cls.__module__
    else:
        mod = getattr(cb, "__module__", "") or ""
    return f"{mod}.{qual}" if mod else qual


class _TraceQueue(EventQueue):
    """An event queue recording ``(time, seq, handler)`` per executed event.

    Overriding :meth:`step` routes :meth:`EventQueue.run` through the
    instrumented per-event path automatically.  With a ``limit``, raises
    :class:`ScheduleReplayLimit` *before* executing event number
    ``limit`` — the replay stops with the pre-event state intact.
    """

    def __init__(self, tie_breaker=None, limit: Optional[int] = None):
        super().__init__()
        self.tie_breaker = tie_breaker
        self.limit = limit
        self.records: list[tuple[float, int, str]] = []

    def step(self) -> bool:
        event = self._peek_live()
        if event is None:
            return False
        if self.limit is not None and len(self.records) >= self.limit:
            raise ScheduleReplayLimit()
        self.records.append(
            (event.time, event.seq, _describe_callback(event.callback)))
        return super().step()


# -- reports --------------------------------------------------------------------


@dataclass
class ScheduleOutcome:
    """One trial's result: which schedule ran and what it produced."""

    trial: int          #: 0 is the FIFO baseline; 1..N the permutations.
    seed: int           #: Tie-break seed (0 for the baseline).
    fingerprint: str    #: SHA-256 over the canonical JSON payload.
    payload: dict = field(repr=False)
    events_processed: int = 0
    final_time: float = 0.0

    def to_dict(self) -> dict:
        return {
            "trial": self.trial,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "events_processed": self.events_processed,
            "final_time": self.final_time,
        }


@dataclass
class DivergenceReport:
    """Where two schedules of the same simulation first disagreed.

    ``baseline_state`` / ``diverging_state`` reuse the stall watchdog's
    bundle vocabulary (``wait_for`` text + ``diagnostics`` dict from
    :meth:`repro.system.sys_layer.System.diagnostics`), captured with each
    run replayed up to — but not including — the first diverging event.
    """

    label: str
    diverging_trial: int
    diverging_seed: int
    first_divergence_index: int
    baseline_event: Optional[dict]
    diverging_event: Optional[dict]
    shared_prefix: list[dict]
    payload_diff: list[str]
    baseline_state: dict
    diverging_state: dict

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "diverging_trial": self.diverging_trial,
            "diverging_seed": self.diverging_seed,
            "first_divergence_index": self.first_divergence_index,
            "baseline_event": self.baseline_event,
            "diverging_event": self.diverging_event,
            "shared_prefix": self.shared_prefix,
            "payload_diff": self.payload_diff,
            "baseline_state": self.baseline_state,
            "diverging_state": self.diverging_state,
        }

    def summary(self) -> str:
        def fmt(ev: Optional[dict]) -> str:
            if ev is None:
                return "<run ended>"
            return f"t={ev['time']:g} seq={ev['seq']} {ev['callback']}"

        lines = [
            f"schedule race in {self.label}: trial {self.diverging_trial} "
            f"(seed 0x{self.diverging_seed:x}) diverged from the FIFO "
            f"baseline at event #{self.first_divergence_index}",
            f"  baseline fired:  {fmt(self.baseline_event)}",
            f"  perturbed fired: {fmt(self.diverging_event)}",
        ]
        if self.payload_diff:
            lines.append("  result fields differing: "
                         + ", ".join(self.payload_diff))
        for side, state in (("baseline", self.baseline_state),
                            ("perturbed", self.diverging_state)):
            wait_for = state.get("wait_for")
            if wait_for:
                lines.append(f"  {side} {wait_for.splitlines()[0]}")
        return "\n".join(lines)


@dataclass
class ScheduleReport:
    """All trials for one probe, plus the bisected divergence if any."""

    label: str
    trials: int
    seed: int
    outcomes: list[ScheduleOutcome]
    divergence: Optional[DivergenceReport] = None

    @property
    def identical(self) -> bool:
        """True when every permuted schedule reproduced the baseline."""
        if self.divergence is not None:
            return False
        baseline = self.outcomes[0].fingerprint
        return all(o.fingerprint == baseline for o in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "trials": self.trials,
            "seed": self.seed,
            "identical": self.identical,
            "outcomes": [o.to_dict() for o in self.outcomes],
            "divergence": (self.divergence.to_dict()
                           if self.divergence is not None else None),
        }

    def summary(self) -> str:
        if self.identical:
            ran = len(self.outcomes) - 1
            return (f"{self.label}: bit-identical under {ran} permuted "
                    f"schedules (fingerprint "
                    f"{self.outcomes[0].fingerprint[:12]})")
        assert self.divergence is not None
        return self.divergence.summary()

    def to_findings(self) -> LintReport:
        """Render as lint findings for the shared reporters/exit codes."""
        report = LintReport(source=self.label)
        if not self.identical and self.divergence is not None:
            d = self.divergence
            report.add(
                Severity.ERROR,
                "schedule-divergence",
                f"trial{d.diverging_trial}",
                f"result depends on same-timestamp event order: "
                f"first diverging event #{d.first_divergence_index} "
                f"({(d.diverging_event or {}).get('callback', '?')})",
            )
        return report


# -- the detector ---------------------------------------------------------------


def _fingerprint(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _flatten(prefix: str, value: Any, out: dict) -> None:
    if isinstance(value, dict):
        for k in sorted(value):
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _flatten(f"{prefix}[{i}]", item, out)
    else:
        out[prefix] = value


def payload_diff(a: dict, b: dict) -> list[str]:
    """Dotted paths of result fields that differ between two payloads."""
    flat_a: dict = {}
    flat_b: dict = {}
    _flatten("", a, flat_a)
    _flatten("", b, flat_b)
    keys = sorted(set(flat_a) | set(flat_b))
    sentinel = object()
    return [k for k in keys
            if flat_a.get(k, sentinel) != flat_b.get(k, sentinel)]


def _run_trial(probe, trial: int, seed: int,
               tie_breaker: Optional[SeededTieBreak]) -> ScheduleOutcome:
    queue = EventQueue()
    queue.tie_breaker = tie_breaker
    payload = probe.run(queue)
    return ScheduleOutcome(
        trial=trial, seed=seed, fingerprint=_fingerprint(payload),
        payload=payload, events_processed=queue.events_processed,
        final_time=queue.now,
    )


def _traced_run(probe, tie_breaker) -> list[tuple[float, int, str]]:
    queue = _TraceQueue(tie_breaker=tie_breaker)
    probe.run(queue)
    return queue.records


def _partial_run(probe, tie_breaker, limit: int) -> dict:
    """Replay a schedule up to ``limit`` events; snapshot where it stands."""
    queue = _TraceQueue(tie_breaker=tie_breaker, limit=limit)
    captured: list = []
    try:
        probe.run(queue, on_system=captured.append)
    except ScheduleReplayLimit:
        pass
    state: dict = {
        "time": queue.now,
        "events_processed": queue.events_processed,
    }
    if captured:
        system = captured[0]
        state["wait_for"] = system.wait_for_summary()
        state["diagnostics"] = system.diagnostics()
    else:
        snapshot = getattr(probe, "snapshot", None)
        if snapshot is not None:
            state["diagnostics"] = snapshot()
    return state


def _record_dict(record: Optional[tuple[float, int, str]],
                 index: int) -> Optional[dict]:
    if record is None:
        return None
    time, seq, callback = record
    return {"index": index, "time": time, "seq": seq, "callback": callback}


def bisect_divergence(probe, trial: int, seed: int,
                      baseline: ScheduleOutcome, diverged: ScheduleOutcome,
                      context_events: int = 12) -> DivergenceReport:
    """Locate the first event where the permuted schedule left the baseline.

    Re-runs both schedules traced, finds the first differing trace record,
    then replays each side up to that event for a state snapshot.  Until
    the first order-sensitive handler fires, both runs schedule the exact
    same events, so the first trace difference *is* the race point.
    """
    base_trace = _traced_run(probe, None)
    div_trace = _traced_run(probe, SeededTieBreak(seed))
    limit = min(len(base_trace), len(div_trace))
    index = next((i for i in range(limit)
                  if base_trace[i] != div_trace[i]), limit)
    prefix_start = max(0, index - context_events)
    shared_prefix = [
        _record_dict(base_trace[i], i) for i in range(prefix_start, index)
    ]
    return DivergenceReport(
        label=probe.label,
        diverging_trial=trial,
        diverging_seed=seed,
        first_divergence_index=index,
        baseline_event=_record_dict(
            base_trace[index] if index < len(base_trace) else None, index),
        diverging_event=_record_dict(
            div_trace[index] if index < len(div_trace) else None, index),
        shared_prefix=shared_prefix,
        payload_diff=payload_diff(baseline.payload, diverged.payload),
        baseline_state=_partial_run(probe, None, index),
        diverging_state=_partial_run(probe, SeededTieBreak(seed), index),
    )


def run_schedule_trials(
    probe,
    trials: int = DEFAULT_SCHEDULE_TRIALS,
    seed: int = DEFAULT_SCHEDULE_SEED,
    context_events: int = 12,
) -> ScheduleReport:
    """Run ``probe`` under FIFO plus ``trials`` permuted schedules.

    Stops at the first diverging trial (the config is already proven
    racy) and bisects it; otherwise returns a report whose
    :attr:`ScheduleReport.identical` is True — the probe's result is
    independent of same-timestamp event order for every seed tried.
    """
    baseline = _run_trial(probe, 0, 0, None)
    outcomes = [baseline]
    divergence = None
    for trial in range(1, trials + 1):
        tseed = trial_seed(seed, trial)
        outcome = _run_trial(probe, trial, tseed, SeededTieBreak(tseed))
        outcomes.append(outcome)
        if outcome.fingerprint != baseline.fingerprint:
            divergence = bisect_divergence(
                probe, trial, tseed, baseline, outcome,
                context_events=context_events)
            break
    return ScheduleReport(label=probe.label, trials=trials, seed=seed,
                          outcomes=outcomes, divergence=divergence)
