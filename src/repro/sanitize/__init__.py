"""Simulation sanitizer: static config lint + runtime invariant checking.

Two complementary halves guard the event/network/collective stack:

* :mod:`repro.sanitize.static_lint` — checks a fully-assembled run
  *before* simulation starts (dimension products, flit/packet alignment,
  unit consistency, mapping bijections, fault-factor ranges), surfaced
  through the ``astra-repro lint`` subcommand with machine-readable
  findings.
* :mod:`repro.sanitize.runtime` — pluggable invariant checkers installed
  into the event queue, both network backends and the collective state
  machines (time-travel scheduling, zero-delay livelock, flit/credit
  conservation, barrier over/under-arrival, drain deadlocks).  Off by
  default; enabled with ``--sanitize`` / ``sanitize=True``.
"""

from repro.sanitize.findings import Finding, LintReport, Severity
from repro.sanitize.runtime import (
    RuntimeSanitizer,
    SanitizedEventQueue,
    SanitizerConfig,
)
from repro.sanitize.static_lint import (
    lint_config,
    lint_fault_schedule,
    lint_platform,
    lint_presets,
    lint_run_spec,
    lint_spec_file,
    lint_topology,
)

__all__ = [
    "Finding",
    "LintReport",
    "Severity",
    "RuntimeSanitizer",
    "SanitizedEventQueue",
    "SanitizerConfig",
    "lint_config",
    "lint_fault_schedule",
    "lint_platform",
    "lint_presets",
    "lint_run_spec",
    "lint_spec_file",
    "lint_topology",
]
