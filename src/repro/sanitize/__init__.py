"""Simulation sanitizer: static lint, determinism analysis, runtime checks.

Four complementary halves guard the event/network/collective stack:

* :mod:`repro.sanitize.static_lint` — checks a fully-assembled run
  *before* simulation starts (dimension products, flit/packet alignment,
  unit consistency, mapping bijections, fault-factor ranges), surfaced
  through the ``astra-repro lint`` subcommand with machine-readable
  findings.
* :mod:`repro.sanitize.source_lint` — AST-level determinism lint over the
  simulator's own Python sources (unseeded RNGs, wall-clock reads,
  unordered-set iteration, ``id()`` ordering, order-sensitive float
  accumulation), surfaced through ``astra-repro analyze --source``.
* :mod:`repro.sanitize.schedule` — the dynamic half of the determinism
  analysis: re-runs a config under seeded permutations of same-timestamp
  event order and proves the results bit-identical (or bisects to the
  first diverging event); ``astra-repro analyze --schedule``.
* :mod:`repro.sanitize.runtime` — pluggable invariant checkers installed
  into the event queue, both network backends and the collective state
  machines (time-travel scheduling, zero-delay livelock, flit/credit
  conservation, barrier over/under-arrival, drain deadlocks).  Off by
  default; enabled with ``--sanitize`` / ``sanitize=True``.

See docs/DETERMINISM.md for the determinism contract the middle two
enforce.
"""

from repro.sanitize.findings import (
    Finding,
    LintReport,
    Severity,
    merge_reports,
)
from repro.sanitize.runtime import (
    RuntimeSanitizer,
    SanitizedEventQueue,
    SanitizerConfig,
)
from repro.sanitize.schedule import (
    CollectiveProbe,
    DivergenceReport,
    InjectedRaceProbe,
    ScheduleReport,
    SeededTieBreak,
    run_schedule_trials,
)
from repro.sanitize.source_lint import (
    lint_source_file,
    lint_source_text,
    lint_source_tree,
)
from repro.sanitize.static_lint import (
    lint_config,
    lint_fault_schedule,
    lint_platform,
    lint_presets,
    lint_run_spec,
    lint_search_space,
    lint_spec_file,
    lint_topology,
)

__all__ = [
    "Finding",
    "LintReport",
    "Severity",
    "merge_reports",
    "RuntimeSanitizer",
    "SanitizedEventQueue",
    "SanitizerConfig",
    "CollectiveProbe",
    "DivergenceReport",
    "InjectedRaceProbe",
    "ScheduleReport",
    "SeededTieBreak",
    "run_schedule_trials",
    "lint_source_file",
    "lint_source_text",
    "lint_source_tree",
    "lint_config",
    "lint_fault_schedule",
    "lint_platform",
    "lint_presets",
    "lint_run_spec",
    "lint_search_space",
    "lint_spec_file",
    "lint_topology",
]
