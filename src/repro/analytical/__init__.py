"""Closed-form collective cost models for analysis and cross-checks."""

from repro.analytical.overlap import (
    OverlapEstimate,
    compute_scale_sweep,
    estimate_overlap,
)
from repro.analytical.cost_models import (
    LinkParams,
    direct_all_reduce_cycles,
    direct_reduce_scatter_cycles,
    hierarchical_all_reduce_volume,
    ring_all_gather_cycles,
    ring_all_reduce_cycles,
    ring_all_to_all_cycles,
    ring_reduce_scatter_cycles,
)

__all__ = [
    "LinkParams",
    "OverlapEstimate",
    "compute_scale_sweep",
    "estimate_overlap",
    "direct_all_reduce_cycles",
    "direct_reduce_scatter_cycles",
    "hierarchical_all_reduce_volume",
    "ring_all_gather_cycles",
    "ring_all_reduce_cycles",
    "ring_all_to_all_cycles",
    "ring_reduce_scatter_cycles",
]
