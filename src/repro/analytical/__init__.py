"""Closed-form collective cost models for analysis and cross-checks."""

from repro.analytical.overlap import (
    OverlapEstimate,
    compute_scale_sweep,
    estimate_overlap,
)
from repro.analytical.cost_models import (
    CostTable,
    LinkCounts,
    LinkParams,
    alltoall_link_counts,
    bandwidth_lower_bound_cycles,
    direct_all_reduce_cycles,
    direct_reduce_scatter_cycles,
    dollars_per_step,
    hierarchical_all_reduce_volume,
    link_dollars,
    perf_per_link_dollar,
    platform_dollars,
    ring_all_gather_cycles,
    ring_all_reduce_cycles,
    ring_all_to_all_cycles,
    ring_reduce_scatter_cycles,
    torus_link_counts,
)

__all__ = [
    "CostTable",
    "LinkCounts",
    "LinkParams",
    "OverlapEstimate",
    "compute_scale_sweep",
    "estimate_overlap",
    "alltoall_link_counts",
    "bandwidth_lower_bound_cycles",
    "direct_all_reduce_cycles",
    "direct_reduce_scatter_cycles",
    "dollars_per_step",
    "hierarchical_all_reduce_volume",
    "link_dollars",
    "perf_per_link_dollar",
    "platform_dollars",
    "ring_all_gather_cycles",
    "ring_all_reduce_cycles",
    "ring_all_to_all_cycles",
    "ring_reduce_scatter_cycles",
    "torus_link_counts",
]
