"""First-order compute/communication overlap model.

A closed-form companion to the simulator for the Fig. 17/18 questions:
given per-iteration compute, raw communication demand and the platform's
collective bandwidth, predict the exposed-communication ratio.  The
model is deliberately simple — communication overlaps with the whole
iteration except the first layers' tail (Sec. III-E) — and is used as a
sanity envelope around the simulated results, not a replacement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class OverlapEstimate:
    """Predicted timing for one training iteration."""

    compute_cycles: float
    comm_cycles: float
    exposed_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.exposed_cycles

    @property
    def exposed_ratio(self) -> float:
        busy = self.compute_cycles + self.exposed_cycles
        return self.exposed_cycles / busy if busy else 0.0


def estimate_overlap(
    compute_cycles: float,
    comm_cycles: float,
    overlappable_fraction: float = 1.0,
) -> OverlapEstimate:
    """Predict exposure when ``comm_cycles`` of serialized communication
    must fit under ``compute_cycles`` of useful work.

    ``overlappable_fraction`` discounts the window (e.g. activations that
    block cannot overlap anything: pass the overlappable share).  Exposure
    is the communication that does not fit plus the non-overlappable part.
    """
    if compute_cycles < 0 or comm_cycles < 0:
        raise ReproError("cycles must be >= 0")
    if not 0 <= overlappable_fraction <= 1:
        raise ReproError("overlappable_fraction must be in [0, 1]")
    overlappable = comm_cycles * overlappable_fraction
    blocking = comm_cycles - overlappable
    hidden = min(overlappable, compute_cycles)
    return OverlapEstimate(
        compute_cycles=compute_cycles,
        comm_cycles=comm_cycles,
        exposed_cycles=(overlappable - hidden) + blocking,
    )


def compute_scale_sweep(
    base_compute_cycles: float,
    comm_cycles: float,
    scales: list[float],
    overlappable_fraction: float = 1.0,
) -> list[OverlapEstimate]:
    """The Fig. 18 closed form: compute shrinks with NPU power while the
    network stays fixed — exposure grows toward comm-bound saturation."""
    if base_compute_cycles <= 0:
        raise ReproError("base compute must be positive")
    out = []
    for scale in scales:
        if scale <= 0:
            raise ReproError(f"compute scale must be positive: {scale}")
        out.append(estimate_overlap(
            base_compute_cycles / scale, comm_cycles, overlappable_fraction))
    return out
