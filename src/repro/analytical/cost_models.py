"""Closed-form collective cost models (alpha-beta style) and TCO pricing.

Used three ways: as fast first-order analysis (the "analytical results"
of Sec. V), as cross-checks on the simulator — simulated times must never
beat these lower bounds, and must approach them for large messages — and
as the dollar side of cost-weighted search objectives
(:mod:`repro.search.objectives`): link-count closed forms per topology
family, BW-class pricing, and the $/step amortization arithmetic.

All timing costs are in cycles for one chunk of ``size`` bytes on links
with ``bytes_per_cycle`` effective bandwidth and ``latency`` cycles per
hop; ``alpha`` folds in per-step fixed costs (endpoint delay etc.).
Dollar costs are capital expenditure; :func:`dollars_per_step` amortizes
them over a platform lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import CollectiveError, ConfigError


@dataclass(frozen=True)
class LinkParams:
    """Effective per-link timing used by the closed forms."""

    bytes_per_cycle: float
    latency_cycles: float
    endpoint_delay_cycles: float = 10.0

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise CollectiveError("bytes_per_cycle must be positive")
        if self.latency_cycles < 0 or self.endpoint_delay_cycles < 0:
            raise CollectiveError("latencies must be >= 0")

    @property
    def alpha(self) -> float:
        """Per-step fixed cost."""
        return self.latency_cycles + self.endpoint_delay_cycles


def ring_reduce_scatter_cycles(size: float, n: int, link: LinkParams,
                               reduction_cycles_per_kb: float = 0.0) -> float:
    """(N-1) steps of size/N messages plus per-step reduction."""
    _check(size, n)
    step = size / n / link.bytes_per_cycle + link.alpha
    reduce = reduction_cycles_per_kb * (size / n) / 1024.0
    return (n - 1) * (step + reduce)


def ring_all_gather_cycles(size: float, n: int, link: LinkParams) -> float:
    """(N-1) relay steps of size/N messages, no reduction."""
    _check(size, n)
    step = size / n / link.bytes_per_cycle + link.alpha
    return (n - 1) * step


def ring_all_reduce_cycles(size: float, n: int, link: LinkParams,
                           reduction_cycles_per_kb: float = 0.0) -> float:
    """Reduce-scatter followed by all-gather: 2(N-1) steps."""
    return (ring_reduce_scatter_cycles(size, n, link, reduction_cycles_per_kb)
            + ring_all_gather_cycles(size, n, link))


def ring_all_to_all_cycles(size: float, n: int, link: LinkParams) -> float:
    """Software-routed ring all-to-all lower bound.

    The binding resource is each node's single outgoing ring link: the
    node's own (N-1) messages plus the relay traffic passing through it —
    message to distance d occupies d links, so per-link traffic is
    ``(size/n) * n(n-1)/2 / n`` plus per-hop relay costs on the critical
    path (N-1 sequential hops for the farthest message).
    """
    _check(size, n)
    message = size / n
    per_link_bytes = message * (n - 1) / 2 * 1  # sum of distances / n links * n senders
    serialization = per_link_bytes * n / n / link.bytes_per_cycle
    critical_hops = (n - 1) * (link.alpha + message / link.bytes_per_cycle)
    return max(serialization, critical_hops)


def direct_reduce_scatter_cycles(size: float, n: int, link: LinkParams,
                                 parallel_links: int = 1,
                                 reduction_cycles_per_kb: float = 0.0) -> float:
    """One simultaneous step on the alltoall topology: each node pushes
    (N-1) messages of size/N through ``parallel_links`` uplinks and
    traverses two hops (uplink, downlink) through a switch."""
    _check(size, n)
    if parallel_links < 1:
        raise CollectiveError("parallel_links must be >= 1")
    message = size / n
    uplink_bytes = message * (n - 1) / min(parallel_links, n - 1)
    serialization = uplink_bytes / link.bytes_per_cycle
    reduce = reduction_cycles_per_kb * message / 1024.0
    return serialization + 2 * link.latency_cycles + link.endpoint_delay_cycles + reduce


def direct_all_reduce_cycles(size: float, n: int, link: LinkParams,
                             parallel_links: int = 1,
                             reduction_cycles_per_kb: float = 0.0) -> float:
    """Direct reduce-scatter + direct all-gather."""
    rs = direct_reduce_scatter_cycles(size, n, link, parallel_links,
                                      reduction_cycles_per_kb)
    ag = direct_reduce_scatter_cycles(size, n, link, parallel_links, 0.0)
    return rs + ag


def hierarchical_all_reduce_volume(dim_sizes: list[int], enhanced: bool) -> float:
    """Per-node traffic volume as a multiple of the initial data size N —
    the Sec. V-B arithmetic (e.g. 126/64 for 1x64x1 baseline, 28/8 for
    1x8x8, 36/8 for 4x4x4).

    Baseline all-reduces the full data on every dimension; the enhanced
    algorithm reduce-scatters on the first dimension, all-reduces 1/M on
    the rest, and all-gathers on the first.
    """
    active = [n for n in dim_sizes if n > 1]
    if not active:
        return 0.0
    if not enhanced or len(active) == 1:
        return sum(2.0 * (n - 1) / n for n in active)
    m = active[0]
    volume = (m - 1) / m  # local reduce-scatter
    volume += sum(2.0 * (n - 1) / n / m for n in active[1:])
    volume += (m - 1) / m  # local all-gather
    return volume


def bandwidth_lower_bound_cycles(op: str, size: float, n: int,
                                 bytes_per_cycle: float) -> float:
    """Topology-agnostic bandwidth floor for one collective.

    Any algorithm for the given collective must move at least this much
    data through each node's aggregate egress bandwidth
    (``bytes_per_cycle``, summed over every link the node drives):
    all-reduce moves ``2(N-1)/N`` of the payload per node, the
    single-pass collectives ``(N-1)/N``.  Latency terms are dropped, so
    this is a *floor*: simulated times must never beat it.  The search
    report uses it as a sanity check on every evaluated point
    (docs/SEARCH.md).
    """
    _check(size, n)
    if bytes_per_cycle <= 0:
        raise CollectiveError(f"bytes_per_cycle must be positive: {bytes_per_cycle}")
    per_node = size * (n - 1) / n
    if op == "allreduce":
        per_node *= 2.0
    elif op not in ("allgather", "reducescatter", "alltoall"):
        raise CollectiveError(f"no lower bound for collective {op!r}")
    return per_node / bytes_per_cycle


# -- platform cost / TCO ---------------------------------------------------------


@dataclass(frozen=True)
class LinkCounts:
    """Unidirectional link (and switch) inventory of one platform.

    The closed forms below count *logical channels*: a ring over ``d``
    nodes contributes ``d`` unidirectional links per ring instance, and
    an alltoall package fabric contributes one up/down link pair per NPU
    per global switch.
    """

    local: int
    package: int
    switches: int = 0

    @property
    def total_links(self) -> int:
        return self.local + self.package


def torus_link_counts(local: int, horizontal: int, vertical: int,
                      local_rings: int = 2, horizontal_rings: int = 1,
                      vertical_rings: int = 1) -> LinkCounts:
    """Link inventory of an ``MxNxK`` hierarchical torus.

    Matches the fabric the simulator builds
    (:class:`repro.network.physical.torus.TorusFabric`): local rings are
    unidirectional — ``num_npus x local_rings`` links — while the
    horizontal and vertical dimensions use *bidirectional* rings, each
    yielding a CW and a CCW channel: ``num_npus x rings x 2`` links per
    active dimension.  Size-1 dimensions contribute nothing (there is no
    ring to build — the simulator ignores their ring counts too).
    """
    for name, value in (("local", local), ("horizontal", horizontal),
                        ("vertical", vertical)):
        if value < 1:
            raise ConfigError(f"torus {name} dimension must be >= 1, got {value}")
    for name, value in (("local_rings", local_rings),
                        ("horizontal_rings", horizontal_rings),
                        ("vertical_rings", vertical_rings)):
        if value < 1:
            raise ConfigError(f"{name} must be >= 1, got {value}")
    num_npus = local * horizontal * vertical
    local_links = num_npus * local_rings if local > 1 else 0
    package_links = 0
    if horizontal > 1:
        package_links += num_npus * horizontal_rings * 2
    if vertical > 1:
        package_links += num_npus * vertical_rings * 2
    return LinkCounts(local=local_links, package=package_links, switches=0)


def alltoall_link_counts(local: int, packages: int, local_rings: int = 2,
                         global_switches: int = 2) -> LinkCounts:
    """Link inventory of an ``MxN`` hierarchical alltoall.

    Local rings as in the torus; the package fabric gives every NPU one
    uplink per global switch (the Sec. V-A setup drives 7 switches from
    8 packages so each peer pair has a dedicated path).
    """
    if local < 1:
        raise ConfigError(f"alltoall local dimension must be >= 1, got {local}")
    if packages < 2:
        raise ConfigError(f"alltoall needs at least 2 packages, got {packages}")
    if local_rings < 1 or global_switches < 1:
        raise ConfigError("local_rings and global_switches must be >= 1")
    num_npus = local * packages
    local_links = num_npus * local_rings if local > 1 else 0
    return LinkCounts(local=local_links, package=num_npus * global_switches,
                      switches=global_switches)


@dataclass(frozen=True)
class CostTable:
    """BW-class pricing for platform capital cost (TCO survey framing).

    Link prices are per GB/s of per-link bandwidth — a 200 GB/s local
    link at 2 $/GBps costs $400 — so re-partitioning bandwidth across
    more rings is cost-neutral only if per-link bandwidth shrinks
    accordingly; adding rings at full per-link bandwidth buys real
    hardware.  ``amortization_seconds`` spreads capex over a platform
    lifetime for the $/step framing (default three years).
    """

    local_link_dollars_per_gbps: float = 2.0
    package_link_dollars_per_gbps: float = 10.0
    switch_dollars: float = 5_000.0
    npu_dollars: float = 10_000.0
    amortization_seconds: float = 3 * 365 * 24 * 3600.0

    def __post_init__(self) -> None:
        for name in ("local_link_dollars_per_gbps",
                     "package_link_dollars_per_gbps", "switch_dollars",
                     "npu_dollars"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.amortization_seconds <= 0:
            raise ConfigError(
                f"amortization_seconds must be positive, got "
                f"{self.amortization_seconds}")

    @classmethod
    def field_names(cls) -> set[str]:
        return {f.name for f in fields(cls)}

    @classmethod
    def from_dict(cls, data: dict) -> "CostTable":
        unknown = sorted(set(data) - cls.field_names())
        if unknown:
            raise ConfigError(f"unknown cost-table keys: {unknown}")
        return cls(**data)


def link_dollars(counts: LinkCounts, local_bandwidth_gbps: float,
                 package_bandwidth_gbps: float,
                 table: CostTable) -> float:
    """Capital cost of the interconnect alone (links + switches)."""
    if local_bandwidth_gbps <= 0 or package_bandwidth_gbps <= 0:
        raise ConfigError("link bandwidths must be positive")
    return (counts.local * local_bandwidth_gbps * table.local_link_dollars_per_gbps
            + counts.package * package_bandwidth_gbps
            * table.package_link_dollars_per_gbps
            + counts.switches * table.switch_dollars)


def platform_dollars(counts: LinkCounts, num_npus: int,
                     local_bandwidth_gbps: float,
                     package_bandwidth_gbps: float,
                     table: CostTable) -> float:
    """Total platform capital cost: NPUs plus the interconnect."""
    if num_npus < 1:
        raise ConfigError(f"num_npus must be >= 1, got {num_npus}")
    return (num_npus * table.npu_dollars
            + link_dollars(counts, local_bandwidth_gbps,
                           package_bandwidth_gbps, table))


def dollars_per_step(capital_dollars: float, duration_cycles: float,
                     table: CostTable,
                     frequency_hz: float = 1e9) -> float:
    """Amortized dollar cost of one training step / collective.

    Capex spread uniformly over ``table.amortization_seconds`` of
    operation: a step occupying ``duration_cycles / frequency_hz``
    seconds of the platform costs that fraction of the lifetime budget.
    """
    if capital_dollars < 0:
        raise ConfigError(f"capital_dollars must be >= 0, got {capital_dollars}")
    if duration_cycles <= 0:
        raise ConfigError(f"duration_cycles must be positive, got {duration_cycles}")
    if frequency_hz <= 0:
        raise ConfigError(f"frequency_hz must be positive, got {frequency_hz}")
    step_seconds = duration_cycles / frequency_hz
    return capital_dollars * step_seconds / table.amortization_seconds


def perf_per_link_dollar(size_bytes: float, duration_cycles: float,
                         interconnect_dollars: float,
                         frequency_hz: float = 1e9) -> float:
    """Delivered collective bandwidth per interconnect dollar (GB/s/$).

    The TCO survey's perf-per-link-dollar metric: how much algorithmic
    bandwidth each dollar of links and switches buys.  NPU cost is
    deliberately excluded — this metric ranks *network* provisioning.
    """
    if size_bytes <= 0 or duration_cycles <= 0:
        raise ConfigError("size_bytes and duration_cycles must be positive")
    if interconnect_dollars <= 0:
        raise ConfigError(
            f"interconnect_dollars must be positive, got {interconnect_dollars}")
    gbps = size_bytes / (duration_cycles / frequency_hz) / 1e9
    return gbps / interconnect_dollars


def _check(size: float, n: int) -> None:
    if size <= 0:
        raise CollectiveError(f"size must be positive: {size}")
    if n < 2:
        raise CollectiveError(f"need >= 2 nodes, got {n}")
