"""Closed-form collective cost models (alpha-beta style).

Used two ways: as fast first-order analysis (the "analytical results" of
Sec. V) and as cross-checks on the simulator — simulated times must never
beat these lower bounds, and must approach them for large messages.

All costs are in cycles for one chunk of ``size`` bytes on links with
``bytes_per_cycle`` effective bandwidth and ``latency`` cycles per hop;
``alpha`` folds in per-step fixed costs (endpoint delay etc.).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CollectiveError


@dataclass(frozen=True)
class LinkParams:
    """Effective per-link timing used by the closed forms."""

    bytes_per_cycle: float
    latency_cycles: float
    endpoint_delay_cycles: float = 10.0

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise CollectiveError("bytes_per_cycle must be positive")
        if self.latency_cycles < 0 or self.endpoint_delay_cycles < 0:
            raise CollectiveError("latencies must be >= 0")

    @property
    def alpha(self) -> float:
        """Per-step fixed cost."""
        return self.latency_cycles + self.endpoint_delay_cycles


def ring_reduce_scatter_cycles(size: float, n: int, link: LinkParams,
                               reduction_cycles_per_kb: float = 0.0) -> float:
    """(N-1) steps of size/N messages plus per-step reduction."""
    _check(size, n)
    step = size / n / link.bytes_per_cycle + link.alpha
    reduce = reduction_cycles_per_kb * (size / n) / 1024.0
    return (n - 1) * (step + reduce)


def ring_all_gather_cycles(size: float, n: int, link: LinkParams) -> float:
    """(N-1) relay steps of size/N messages, no reduction."""
    _check(size, n)
    step = size / n / link.bytes_per_cycle + link.alpha
    return (n - 1) * step


def ring_all_reduce_cycles(size: float, n: int, link: LinkParams,
                           reduction_cycles_per_kb: float = 0.0) -> float:
    """Reduce-scatter followed by all-gather: 2(N-1) steps."""
    return (ring_reduce_scatter_cycles(size, n, link, reduction_cycles_per_kb)
            + ring_all_gather_cycles(size, n, link))


def ring_all_to_all_cycles(size: float, n: int, link: LinkParams) -> float:
    """Software-routed ring all-to-all lower bound.

    The binding resource is each node's single outgoing ring link: the
    node's own (N-1) messages plus the relay traffic passing through it —
    message to distance d occupies d links, so per-link traffic is
    ``(size/n) * n(n-1)/2 / n`` plus per-hop relay costs on the critical
    path (N-1 sequential hops for the farthest message).
    """
    _check(size, n)
    message = size / n
    per_link_bytes = message * (n - 1) / 2 * 1  # sum of distances / n links * n senders
    serialization = per_link_bytes * n / n / link.bytes_per_cycle
    critical_hops = (n - 1) * (link.alpha + message / link.bytes_per_cycle)
    return max(serialization, critical_hops)


def direct_reduce_scatter_cycles(size: float, n: int, link: LinkParams,
                                 parallel_links: int = 1,
                                 reduction_cycles_per_kb: float = 0.0) -> float:
    """One simultaneous step on the alltoall topology: each node pushes
    (N-1) messages of size/N through ``parallel_links`` uplinks and
    traverses two hops (uplink, downlink) through a switch."""
    _check(size, n)
    if parallel_links < 1:
        raise CollectiveError("parallel_links must be >= 1")
    message = size / n
    uplink_bytes = message * (n - 1) / min(parallel_links, n - 1)
    serialization = uplink_bytes / link.bytes_per_cycle
    reduce = reduction_cycles_per_kb * message / 1024.0
    return serialization + 2 * link.latency_cycles + link.endpoint_delay_cycles + reduce


def direct_all_reduce_cycles(size: float, n: int, link: LinkParams,
                             parallel_links: int = 1,
                             reduction_cycles_per_kb: float = 0.0) -> float:
    """Direct reduce-scatter + direct all-gather."""
    rs = direct_reduce_scatter_cycles(size, n, link, parallel_links,
                                      reduction_cycles_per_kb)
    ag = direct_reduce_scatter_cycles(size, n, link, parallel_links, 0.0)
    return rs + ag


def hierarchical_all_reduce_volume(dim_sizes: list[int], enhanced: bool) -> float:
    """Per-node traffic volume as a multiple of the initial data size N —
    the Sec. V-B arithmetic (e.g. 126/64 for 1x64x1 baseline, 28/8 for
    1x8x8, 36/8 for 4x4x4).

    Baseline all-reduces the full data on every dimension; the enhanced
    algorithm reduce-scatters on the first dimension, all-reduces 1/M on
    the rest, and all-gathers on the first.
    """
    active = [n for n in dim_sizes if n > 1]
    if not active:
        return 0.0
    if not enhanced or len(active) == 1:
        return sum(2.0 * (n - 1) / n for n in active)
    m = active[0]
    volume = (m - 1) / m  # local reduce-scatter
    volume += sum(2.0 * (n - 1) / n / m for n in active[1:])
    volume += (m - 1) / m  # local all-gather
    return volume


def _check(size: float, n: int) -> None:
    if size <= 0:
        raise CollectiveError(f"size must be positive: {size}")
    if n < 2:
        raise CollectiveError(f"need >= 2 nodes, got {n}")
