"""Ranked frontier reports for `astra-repro search` (table + JSON)."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from repro.search.driver import Evaluation


@dataclass
class SearchReport:
    """Everything a finished search reports: the ranked frontier plus
    the run's accounting (budget spent, simulations, cache traffic)."""

    space: str
    num_npus: int
    collective: str
    size_bytes: float
    objective: str
    strategy: str
    seed: int
    budget: int
    frontier: list[Evaluation] = field(default_factory=list)
    evaluations: int = 0
    simulations: int = 0
    cache_summary: Optional[str] = None

    @property
    def best(self) -> Optional[Evaluation]:
        return self.frontier[0] if self.frontier else None

    def format_table(self, top: int = 10) -> str:
        """Ranked table of the best ``top`` points."""
        lines = [
            f"search space: {self.space} ({self.num_npus} NPUs, "
            f"{self.collective}, {self.size_bytes / 1024.0:.0f} KB)",
            f"objective: {self.objective}  strategy: {self.strategy}  "
            f"seed: {self.seed}",
            f"evaluated {self.evaluations} unique points "
            f"({self.simulations} simulated, budget {self.budget})",
        ]
        if not self.frontier:
            lines.append("no feasible points evaluated")
            return "\n".join(lines)
        best_score = self.frontier[0].score
        header = (f"{'rank':>4}  {'score':>14}  {'vs best':>8}  "
                  f"{'cycles':>14}  {'x floor':>7}  label")
        lines.append(header)
        lines.append("-" * len(header))
        for rank, ev in enumerate(self.frontier[:top], start=1):
            if best_score != 0:
                vs_best = f"{ev.score / best_score:8.3f}"
            else:
                vs_best = "     n/a"
            floor_note = f"{ev.floor_ratio:7.2f}"
            if ev.floor_ratio < 1.0:
                floor_note += " !"  # beat the bandwidth floor: impossible
            lines.append(
                f"{rank:>4}  {ev.score:14.4f}  {vs_best}  "
                f"{ev.duration_cycles:14.1f}  {floor_note}  {ev.label}")
        if len(self.frontier) > top:
            lines.append(f"... and {len(self.frontier) - top} more points")
        return "\n".join(lines)

    def to_dict(self, top: Optional[int] = None) -> dict:
        frontier = self.frontier if top is None else self.frontier[:top]
        return {
            "space": self.space,
            "num_npus": self.num_npus,
            "collective": self.collective,
            "size_bytes": self.size_bytes,
            "objective": self.objective,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "evaluations": self.evaluations,
            "simulations": self.simulations,
            "frontier": [ev.to_dict() for ev in frontier],
        }

    def write_json(self, path: str, top: Optional[int] = None) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(top=top), f, indent=2, sort_keys=True)
            f.write("\n")
