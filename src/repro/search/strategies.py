"""Seeded search strategies over encoded genomes.

A :class:`Strategy` proposes generations of genomes (``ask``) and learns
from their scores (``tell``).  The driver owns evaluation — batching
each generation through the parallel executor and deduplicating against
its memo — so strategies stay pure proposal logic and determinism
reduces to one rule: all randomness flows from the ``random.Random``
seeded at construction, and all sorts break ties on the genome tuple.

``ask`` may propose duplicates or already-seen genomes; they cost
nothing (driver memo, then the content-addressed run cache) and keeping
them makes the proposal stream independent of evaluation history, which
is what lets a warm-cache rerun replay the exact trajectory.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ConfigError
from repro.search.space import SearchSpace

#: Names accepted by :func:`make_strategy` (and the CLI ``--strategy``).
STRATEGY_NAMES = ("random", "evolutionary")

Genome = tuple[int, ...]


class Strategy:
    """Base strategy: propose genomes, absorb scores."""

    name = "strategy"

    def __init__(self, space: SearchSpace, seed: int):
        self.space = space
        self.seed = seed
        self.rng = random.Random(seed)

    def ask(self) -> list[Genome]:
        """The next generation of candidate genomes (may repeat)."""
        raise NotImplementedError

    def tell(self, scored: Sequence[tuple[Genome, float]]) -> None:
        """Scores for the genomes of the last ``ask``, in ask order."""


class RandomStrategy(Strategy):
    """Pure random search: every generation is fresh feasible samples."""

    name = "random"

    def __init__(self, space: SearchSpace, seed: int,
                 generation_size: int = 8):
        super().__init__(space, seed)
        if generation_size < 1:
            raise ConfigError(
                f"generation_size must be >= 1, got {generation_size}")
        self.generation_size = generation_size

    def ask(self) -> list[Genome]:
        return [self.space.random_genome(self.rng)
                for _ in range(self.generation_size)]


class EvolutionaryStrategy(Strategy):
    """(mu + lambda) evolution over the encoded space.

    Generation 0 samples ``mu + lam`` random genomes.  After each
    ``tell``, survivors are the best ``mu`` of parents-plus-offspring
    (sorted by score, ties broken by genome so ranking never depends on
    arrival order); each later ``ask`` breeds ``lam`` children by
    uniform crossover of two survivors followed by per-gene mutation.
    """

    name = "evolutionary"

    def __init__(self, space: SearchSpace, seed: int, mu: int = 4,
                 lam: int = 8, mutation_rate: float = 0.25):
        super().__init__(space, seed)
        if mu < 1 or lam < 1:
            raise ConfigError(f"mu and lambda must be >= 1, got mu={mu} lam={lam}")
        if not 0.0 < mutation_rate <= 1.0:
            raise ConfigError(
                f"mutation_rate must be in (0, 1], got {mutation_rate}")
        self.mu = mu
        self.lam = lam
        self.mutation_rate = mutation_rate
        #: Best-first (score, genome) survivors, at most ``mu`` long.
        self.population: list[tuple[float, Genome]] = []

    def ask(self) -> list[Genome]:
        if not self.population:
            return [self.space.random_genome(self.rng)
                    for _ in range(self.mu + self.lam)]
        children = []
        for _ in range(self.lam):
            a = self.rng.choice(self.population)[1]
            b = self.rng.choice(self.population)[1]
            child = self.space.crossover(self.rng, a, b)
            children.append(
                self.space.mutate(self.rng, child, rate=self.mutation_rate))
        return children

    def tell(self, scored: Sequence[tuple[Genome, float]]) -> None:
        merged = {genome: score for score, genome in self.population}
        for genome, score in scored:
            prior = merged.get(genome)
            if prior is None or score < prior:
                merged[genome] = score
        ranked = sorted(((score, genome) for genome, score in merged.items()),
                        key=lambda pair: (pair[0], pair[1]))
        self.population = ranked[:self.mu]


def make_strategy(name: str, space: SearchSpace, seed: int,
                  generation_size: Optional[int] = None,
                  mu: Optional[int] = None, lam: Optional[int] = None,
                  mutation_rate: Optional[float] = None) -> Strategy:
    """Strategy factory keyed by CLI name; None falls back to defaults."""
    if name == "random":
        return RandomStrategy(space, seed,
                              generation_size=generation_size or 8)
    if name == "evolutionary":
        return EvolutionaryStrategy(
            space, seed, mu=mu or 4, lam=lam or 8,
            mutation_rate=mutation_rate if mutation_rate is not None else 0.25)
    raise ConfigError(
        f"unknown strategy {name!r}; expected one of {', '.join(STRATEGY_NAMES)}")
