"""Declarative, JSON-loadable design spaces for `astra-repro search`.

A :class:`SearchSpace` spans the paper's Fig. 1 co-design axes — topology
family and shape, bandwidth partitioning (ring/switch counts, symmetric
links), collective algorithm, scheduler policy and chunk count — as a
cross product of named *axes*, each a finite ordered list of values.  A
candidate is a *genome*: one index per axis, in :data:`AXIS_NAMES` order.
Genomes decode to frozen :class:`SearchPoint` records, which build
harness :class:`~repro.harness.runners.PlatformSpec` platforms via the
module-level :func:`platform_for_point` (module-level so executor points
stay picklable for process pools).

Not every gene matters for every point — a torus genome's
``alltoall_shape`` and ``global_switches`` genes are dead, as are ring
counts on size-1 dimensions.  :meth:`SearchSpace.canonical` zeroes dead
genes so that equivalent genomes collapse to one evaluated point and
revisits are free.

Validation happens in two layers: :func:`repro.sanitize.lint_search_space`
lints the raw JSON (unknown keys, empty axes, out-of-range bounds) with
parameter-anchored findings, and construction here rejects anything a
simulation could not run (infeasible shapes, impossible constraints)
with :class:`~repro.errors.ConfigError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.analytical.cost_models import (
    CostTable,
    LinkCounts,
    alltoall_link_counts,
    platform_dollars,
    torus_link_counts,
)
from repro.collectives.types import CollectiveOp
from repro.config.parameters import (
    AllToAllShape,
    CollectiveAlgorithm,
    SchedulingPolicy,
    TorusShape,
)
from repro.config.presets import PAPER_LOCAL_LINK, PAPER_PACKAGE_LINK
from repro.errors import ConfigError
from repro.harness.runners import PlatformSpec, alltoall_platform, torus_platform

#: Top-level keys a search-space JSON document may carry.
SPACE_KEYS = {"name", "num_npus", "collective", "size_bytes", "axes",
              "constraints", "cost"}

#: Axis names in genome order.  A genome is one index per axis.
AXIS_NAMES = (
    "topology",
    "torus_shape",
    "alltoall_shape",
    "algorithm",
    "scheduling_policy",
    "chunks",
    "local_rings",
    "horizontal_rings",
    "vertical_rings",
    "global_switches",
    "symmetric",
)

#: Keys of the optional ``constraints`` section.
CONSTRAINT_KEYS = {"max_links_per_npu", "max_platform_dollars"}

#: Collective names accepted by the ``collective`` field.
COLLECTIVE_NAMES = ("allreduce", "allgather", "reducescatter", "alltoall")

_TOPOLOGIES = ("Torus", "AllToAll")
_ALGORITHMS = tuple(a.value for a in CollectiveAlgorithm)
_POLICIES = tuple(p.value for p in SchedulingPolicy)

#: How many feasibility-rejected samples :meth:`random_point` tolerates
#: before concluding the constraints admit no point at all.
_SAMPLE_RETRIES = 2000


@dataclass(frozen=True)
class SearchPoint:
    """One decoded design point: everything needed to build a platform."""

    topology: str
    shape: tuple[int, ...]
    algorithm: str
    scheduling_policy: str
    chunks: int
    local_rings: int
    horizontal_rings: int
    vertical_rings: int
    global_switches: int
    symmetric: bool

    @property
    def num_npus(self) -> int:
        product = 1
        for d in self.shape:
            product *= d
        return product

    @property
    def label(self) -> str:
        shape = "x".join(str(d) for d in self.shape)
        sym = "/sym" if self.symmetric else ""
        if self.topology == "Torus":
            rings = f"r{self.local_rings}.{self.horizontal_rings}.{self.vertical_rings}"
            return (f"torus-{shape}/{self.algorithm}/{self.scheduling_policy}"
                    f"/c{self.chunks}/{rings}{sym}")
        return (f"alltoall-{shape}/{self.algorithm}/{self.scheduling_policy}"
                f"/c{self.chunks}/r{self.local_rings}/s{self.global_switches}{sym}")

    def link_counts(self) -> LinkCounts:
        """Link inventory via the closed forms in
        :mod:`repro.analytical.cost_models`."""
        if self.topology == "Torus":
            return torus_link_counts(
                *self.shape,
                local_rings=self.local_rings,
                horizontal_rings=self.horizontal_rings,
                vertical_rings=self.vertical_rings,
            )
        return alltoall_link_counts(
            *self.shape,
            local_rings=self.local_rings,
            global_switches=self.global_switches,
        )

    def bandwidths_gbps(self) -> tuple[float, float]:
        """(local, package) per-link bandwidth in GB/s for this point —
        the Table IV classes, equalized under ``symmetric``."""
        local = (PAPER_PACKAGE_LINK if self.symmetric else PAPER_LOCAL_LINK)
        return local.bandwidth_gbps, PAPER_PACKAGE_LINK.bandwidth_gbps

    def dollars(self, table: CostTable) -> float:
        """Platform capital cost under ``table`` (NPUs + interconnect)."""
        local_gbps, package_gbps = self.bandwidths_gbps()
        return platform_dollars(self.link_counts(), self.num_npus,
                                local_gbps, package_gbps, table)


def platform_for_point(point: SearchPoint) -> PlatformSpec:
    """Build the harness platform for one decoded point.

    Module-level (not a closure) so ``functools.partial`` over it is
    picklable and search evaluations can cross process boundaries.
    """
    algorithm = CollectiveAlgorithm(point.algorithm)
    policy = SchedulingPolicy(point.scheduling_policy)
    if point.topology == "Torus":
        return torus_platform(
            TorusShape(*point.shape),
            algorithm=algorithm,
            scheduling_policy=policy,
            symmetric=point.symmetric,
            local_rings=point.local_rings,
            horizontal_rings=point.horizontal_rings,
            vertical_rings=point.vertical_rings,
            preferred_set_splits=point.chunks,
        )
    return alltoall_platform(
        AllToAllShape(*point.shape),
        algorithm=algorithm,
        scheduling_policy=policy,
        symmetric=point.symmetric,
        local_rings=point.local_rings,
        global_switches=point.global_switches,
        preferred_set_splits=point.chunks,
    )


def parse_shape_value(value: Any, arity: int, num_npus: int,
                      axis: str) -> tuple[int, ...]:
    """Parse one shape axis value (``"2x4x1"`` or ``[2, 4, 1]``)."""
    if isinstance(value, str):
        try:
            dims = tuple(int(tok) for tok in value.lower().split("x"))
        except ValueError:
            raise ConfigError(f"{axis}: bad shape {value!r}") from None
    elif isinstance(value, (list, tuple)):
        dims = tuple(value)
    else:
        raise ConfigError(f"{axis}: shape must be a string or list, got {value!r}")
    if len(dims) != arity or not all(isinstance(d, int) and d >= 1 for d in dims):
        raise ConfigError(
            f"{axis}: shape {value!r} must have {arity} dimensions >= 1")
    product = 1
    for d in dims:
        product *= d
    if product != num_npus:
        raise ConfigError(
            f"{axis}: shape {value!r} yields {product} NPUs, space declares "
            f"num_npus={num_npus}")
    return dims


def _factorizations(n: int, dims: int) -> list[tuple[int, ...]]:
    """All ordered ``dims``-tuples of ints >= 1 whose product is ``n``."""
    if dims == 1:
        return [(n,)]
    out = []
    for first in range(1, n + 1):
        if n % first == 0:
            out.extend((first, *rest) for rest in _factorizations(n // first, dims - 1))
    return out


def _default_axes(num_npus: int) -> dict[str, tuple]:
    """Axis defaults when the JSON omits an axis entirely."""
    alltoall_shapes = tuple(
        s for s in _factorizations(num_npus, 2) if s[1] >= 2)
    return {
        "topology": _TOPOLOGIES if alltoall_shapes else ("Torus",),
        "torus_shape": tuple(_factorizations(num_npus, 3)),
        "alltoall_shape": alltoall_shapes,
        "algorithm": _ALGORITHMS,
        "scheduling_policy": _POLICIES,
        "chunks": (1, 4, 16),
        "local_rings": (1, 2),
        "horizontal_rings": (1, 2),
        "vertical_rings": (1, 2),
        "global_switches": (1, 2, 4),
        "symmetric": (False, True),
    }


class SearchSpace:
    """A validated cross product of design axes plus the workload point
    (one collective at one payload size) candidates are judged on."""

    def __init__(self, name: str, num_npus: int, collective: CollectiveOp,
                 size_bytes: float, axes: dict[str, tuple],
                 constraints: Optional[dict] = None,
                 cost_table: Optional[CostTable] = None,
                 source: str = ""):
        if num_npus < 2:
            raise ConfigError(f"search space needs num_npus >= 2, got {num_npus}")
        if size_bytes <= 0:
            raise ConfigError(f"size_bytes must be positive, got {size_bytes}")
        self.name = name
        self.num_npus = num_npus
        self.collective = collective
        self.size_bytes = float(size_bytes)
        self.axes = {axis: tuple(axes[axis]) for axis in AXIS_NAMES}
        self.constraints = dict(constraints or {})
        self.cost_table = cost_table if cost_table is not None else CostTable()
        self.source = source
        self._validate()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict, source: str = "") -> "SearchSpace":
        if not isinstance(data, dict):
            raise ConfigError(
                f"search space must be a JSON object, got {type(data).__name__}")
        unknown = sorted(set(data) - SPACE_KEYS)
        if unknown:
            raise ConfigError(f"unknown search-space keys: {unknown}")
        try:
            num_npus = int(data["num_npus"])
        except (KeyError, TypeError, ValueError):
            raise ConfigError("search space needs an integer num_npus") from None
        collective_name = data.get("collective", "allreduce")
        if collective_name not in COLLECTIVE_NAMES:
            raise ConfigError(
                f"unknown collective {collective_name!r}; expected one of "
                f"{', '.join(COLLECTIVE_NAMES)}")
        raw_axes = data.get("axes", {})
        if not isinstance(raw_axes, dict):
            raise ConfigError("axes must be an object mapping axis -> values")
        unknown_axes = sorted(set(raw_axes) - set(AXIS_NAMES))
        if unknown_axes:
            raise ConfigError(f"unknown axes: {unknown_axes}")
        defaults = _default_axes(num_npus)
        axes: dict[str, tuple] = {}
        for axis in AXIS_NAMES:
            if axis in raw_axes:
                values = raw_axes[axis]
                if not isinstance(values, list) or not values:
                    raise ConfigError(f"axis {axis!r} must be a non-empty list")
                axes[axis] = cls._parse_axis(axis, values, num_npus)
            else:
                axes[axis] = defaults[axis]
        constraints = data.get("constraints") or {}
        if not isinstance(constraints, dict):
            raise ConfigError("constraints must be an object")
        unknown_constraints = sorted(set(constraints) - CONSTRAINT_KEYS)
        if unknown_constraints:
            raise ConfigError(f"unknown constraints: {unknown_constraints}")
        cost_data = data.get("cost")
        cost_table = CostTable.from_dict(cost_data) if cost_data else None
        return cls(
            name=str(data.get("name", source or "search-space")),
            num_npus=num_npus,
            collective=CollectiveOp(collective_name),
            size_bytes=float(data.get("size_bytes", 4 * 1024 * 1024)),
            axes=axes,
            constraints=constraints,
            cost_table=cost_table,
            source=source,
        )

    @classmethod
    def from_file(cls, path: str) -> "SearchSpace":
        try:
            with open(path) as f:
                data = json.load(f)
        except OSError as exc:
            raise ConfigError(f"cannot read search space: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ConfigError(f"search space {path}: invalid JSON: {exc}") from None
        return cls.from_dict(data, source=str(path))

    @staticmethod
    def _parse_axis(axis: str, values: list, num_npus: int) -> tuple:
        if axis == "topology":
            for v in values:
                if v not in _TOPOLOGIES:
                    raise ConfigError(
                        f"topology axis value {v!r} must be one of {_TOPOLOGIES}")
            return tuple(values)
        if axis == "torus_shape":
            return tuple(parse_shape_value(v, 3, num_npus, axis) for v in values)
        if axis == "alltoall_shape":
            shapes = tuple(parse_shape_value(v, 2, num_npus, axis) for v in values)
            for s in shapes:
                if s[1] < 2:
                    raise ConfigError(
                        f"alltoall_shape: {s} needs at least 2 packages")
            return shapes
        if axis == "algorithm":
            for v in values:
                if v not in _ALGORITHMS:
                    raise ConfigError(
                        f"algorithm axis value {v!r} must be one of {_ALGORITHMS}")
            return tuple(values)
        if axis == "scheduling_policy":
            for v in values:
                if v not in _POLICIES:
                    raise ConfigError(
                        f"scheduling_policy axis value {v!r} must be one of "
                        f"{_POLICIES}")
            return tuple(values)
        if axis == "symmetric":
            for v in values:
                if not isinstance(v, bool):
                    raise ConfigError(
                        f"symmetric axis values must be booleans, got {v!r}")
            return tuple(values)
        # Integer axes: chunks, ring counts, global switches.
        for v in values:
            if isinstance(v, bool) or not isinstance(v, int) or v < 1:
                raise ConfigError(
                    f"axis {axis!r} values must be integers >= 1, got {v!r}")
        return tuple(values)

    def _validate(self) -> None:
        for axis in AXIS_NAMES:
            if not self.axes[axis] and axis not in ("torus_shape", "alltoall_shape"):
                raise ConfigError(f"axis {axis!r} has no values")
        if "Torus" in self.axes["topology"] and not self.axes["torus_shape"]:
            raise ConfigError(
                "topology axis includes 'Torus' but no torus_shape matches "
                f"num_npus={self.num_npus}")
        if "AllToAll" in self.axes["topology"] and not self.axes["alltoall_shape"]:
            raise ConfigError(
                "topology axis includes 'AllToAll' but no alltoall_shape "
                f"matches num_npus={self.num_npus}")
        max_links = self.constraints.get("max_links_per_npu")
        if max_links is not None and (isinstance(max_links, bool)
                                      or not isinstance(max_links, int)
                                      or max_links < 1):
            raise ConfigError(
                f"max_links_per_npu must be an integer >= 1, got {max_links!r}")
        max_dollars = self.constraints.get("max_platform_dollars")
        if max_dollars is not None and (isinstance(max_dollars, bool)
                                        or not isinstance(max_dollars, (int, float))
                                        or max_dollars <= 0):
            raise ConfigError(
                f"max_platform_dollars must be positive, got {max_dollars!r}")

    # -- genomes -------------------------------------------------------------

    @property
    def genome_length(self) -> int:
        return len(AXIS_NAMES)

    def axis_size(self, axis: str) -> int:
        return len(self.axes[axis])

    def num_genomes(self) -> int:
        """Size of the raw cross product (counts equivalent genomes)."""
        product = 1
        for axis in AXIS_NAMES:
            product *= max(1, len(self.axes[axis]))
        return product

    def _check_genome(self, genome: Sequence[int]) -> None:
        if len(genome) != len(AXIS_NAMES):
            raise ConfigError(
                f"genome must have {len(AXIS_NAMES)} genes, got {len(genome)}")
        for axis, gene in zip(AXIS_NAMES, genome):
            size = max(1, len(self.axes[axis]))
            if not 0 <= gene < size:
                raise ConfigError(
                    f"gene for axis {axis!r} out of range: {gene} not in "
                    f"[0, {size})")

    def decode(self, genome: Sequence[int]) -> SearchPoint:
        """The design point a genome denotes."""
        self._check_genome(genome)
        genes = dict(zip(AXIS_NAMES, genome))

        def value(axis: str):
            return self.axes[axis][genes[axis]]

        topology = value("topology")
        shape = value("torus_shape" if topology == "Torus" else "alltoall_shape")
        return SearchPoint(
            topology=topology,
            shape=shape,
            algorithm=value("algorithm"),
            scheduling_policy=value("scheduling_policy"),
            chunks=value("chunks"),
            local_rings=value("local_rings"),
            horizontal_rings=value("horizontal_rings"),
            vertical_rings=value("vertical_rings"),
            global_switches=value("global_switches"),
            symmetric=value("symmetric"),
        )

    def canonical(self, genome: Sequence[int]) -> tuple[int, ...]:
        """Zero out dead genes so equivalent genomes compare equal.

        A torus point ignores ``alltoall_shape`` and ``global_switches``;
        an alltoall point ignores ``torus_shape`` and the horizontal and
        vertical ring counts; ring counts on size-1 dimensions are dead
        for both (verified no-ops in the simulator).
        """
        self._check_genome(genome)
        genes = dict(zip(AXIS_NAMES, genome))
        topology = self.axes["topology"][genes["topology"]]
        if topology == "Torus":
            shape = self.axes["torus_shape"][genes["torus_shape"]]
            genes["alltoall_shape"] = 0
            genes["global_switches"] = 0
            if shape[0] == 1:
                genes["local_rings"] = 0
            if shape[1] == 1:
                genes["horizontal_rings"] = 0
            if shape[2] == 1:
                genes["vertical_rings"] = 0
        else:
            shape = self.axes["alltoall_shape"][genes["alltoall_shape"]]
            genes["torus_shape"] = 0
            genes["horizontal_rings"] = 0
            genes["vertical_rings"] = 0
            if shape[0] == 1:
                genes["local_rings"] = 0
        return tuple(genes[axis] for axis in AXIS_NAMES)

    # -- feasibility ---------------------------------------------------------

    def is_feasible(self, genome: Sequence[int]) -> bool:
        """Whether the decoded point passes the space's constraints.

        Infeasible-by-construction points (shape/NPU mismatches, bad
        enum values) are rejected at load time; this checks the
        cross-axis constraints a single axis cannot express.
        """
        point = self.decode(genome)
        if point.topology == "AllToAll":
            # More switch planes than peer packages duplicates paths the
            # direct algorithms never schedule — reject as wasted budget.
            if point.global_switches > point.shape[1] - 1:
                return False
        max_links = self.constraints.get("max_links_per_npu")
        if max_links is not None:
            counts = point.link_counts()
            if counts.total_links > max_links * self.num_npus:
                return False
        max_dollars = self.constraints.get("max_platform_dollars")
        if max_dollars is not None:
            if point.dollars(self.cost_table) > max_dollars:
                return False
        return True

    # -- sampling and variation (used by the strategies) ---------------------

    def random_genome(self, rng) -> tuple[int, ...]:
        """One feasible canonical genome drawn from ``rng`` (seeded
        ``random.Random``); raises when constraints admit no point."""
        for _ in range(_SAMPLE_RETRIES):
            genome = tuple(rng.randrange(max(1, len(self.axes[axis])))
                           for axis in AXIS_NAMES)
            if self.is_feasible(genome):
                return self.canonical(genome)
        raise ConfigError(
            f"search space {self.name!r}: no feasible point found after "
            f"{_SAMPLE_RETRIES} samples; constraints are too tight")

    def mutate(self, rng, genome: Sequence[int],
               rate: float = 0.25) -> tuple[int, ...]:
        """Resample each gene with probability ``rate``; at least one
        gene always changes.  Falls back to a fresh random genome when
        no feasible mutant is found nearby."""
        genome = tuple(genome)
        variable = [(i, axis) for i, axis in enumerate(AXIS_NAMES)
                    if len(self.axes[axis]) > 1]
        if not variable:
            return self.canonical(genome)
        for _ in range(_SAMPLE_RETRIES // 10):
            mutant = list(genome)
            changed = False
            for i, axis in enumerate(AXIS_NAMES):
                size = max(1, len(self.axes[axis]))
                if size > 1 and rng.random() < rate:
                    mutant[i] = rng.randrange(size)
                    changed = True
            if not changed:
                i, axis = rng.choice(variable)
                mutant[i] = rng.randrange(len(self.axes[axis]))
            if self.is_feasible(mutant):
                return self.canonical(mutant)
        return self.random_genome(rng)

    def crossover(self, rng, a: Sequence[int],
                  b: Sequence[int]) -> tuple[int, ...]:
        """Uniform crossover of two parents; infeasible children fall
        back to the fitter-by-convention first parent."""
        a, b = tuple(a), tuple(b)
        for _ in range(_SAMPLE_RETRIES // 10):
            child = tuple(x if rng.random() < 0.5 else y for x, y in zip(a, b))
            if self.is_feasible(child):
                return self.canonical(child)
        return self.canonical(a)

    # -- exhaustive enumeration ----------------------------------------------

    def enumerate_genomes(self, limit: int = 100_000) -> list[tuple[int, ...]]:
        """Every distinct feasible canonical genome, in deterministic
        lexicographic order — the exhaustive-grid baseline searches are
        judged against.  Guarded by ``limit``: enumerating a space this
        size is exactly what the optimizer exists to avoid."""
        if self.num_genomes() > limit:
            raise ConfigError(
                f"search space {self.name!r} has {self.num_genomes()} genomes; "
                f"refusing to enumerate more than {limit}")
        seen: set[tuple[int, ...]] = set()
        out: list[tuple[int, ...]] = []
        sizes = [max(1, len(self.axes[axis])) for axis in AXIS_NAMES]
        genome = [0] * len(sizes)
        while True:
            g = tuple(genome)
            if self.is_feasible(g):
                canon = self.canonical(g)
                if canon not in seen:
                    seen.add(canon)
                    out.append(canon)
            # Odometer increment in lexicographic order.
            for i in range(len(sizes) - 1, -1, -1):
                genome[i] += 1
                if genome[i] < sizes[i]:
                    break
                genome[i] = 0
            else:
                return out
