"""The search loop: ask → simulate (batched, cached) → score → tell.

:func:`run_search` owns everything around the strategy: canonicalizing
and deduplicating proposals, charging the evaluation budget, batching
each generation through :class:`repro.parallel.ParallelExecutor` (so
``--jobs`` parallelism and the content-addressed run cache apply), and
appending every evaluation to a JSONL trajectory log that a later run
can resume from.

Determinism contract (tested in tests/search/): with a fixed seed the
visited genomes, scores, and report are bit-identical across ``--jobs``
values — the executor returns results in stable input order and the
strategy's randomness never observes evaluation timing.  A rerun with a
warm run cache replays the same trajectory with zero simulations.
"""

from __future__ import annotations

import functools
import json
import math
import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.search.objectives import Objective, floor_cycles
from repro.search.space import SearchSpace, platform_for_point
from repro.search.strategies import Genome, Strategy

#: Consecutive generations with no new unique point before giving up —
#: small spaces are exhausted long before an evaluation budget is.
_STALE_ROUNDS = 3


@dataclass(frozen=True)
class Evaluation:
    """One scored design point."""

    genome: Genome
    label: str
    duration_cycles: float
    score: float
    floor_cycles: float
    dollars: float

    @property
    def floor_ratio(self) -> float:
        """Simulated / lower-bound cycles; below 1.0 means the simulator
        beat an information-theoretic floor, i.e. a bug."""
        return self.duration_cycles / self.floor_cycles

    def to_dict(self) -> dict:
        return {
            "genome": list(self.genome),
            "label": self.label,
            "duration_cycles": self.duration_cycles,
            "score": self.score,
            "floor_cycles": self.floor_cycles,
            "dollars": self.dollars,
        }


def _trajectory_header(space: SearchSpace, objective: Objective,
                       strategy: Strategy) -> dict:
    return {
        "type": "header",
        "space": space.name,
        "num_npus": space.num_npus,
        "collective": space.collective.value,
        "size_bytes": space.size_bytes,
        "objective": objective.name,
        "strategy": strategy.name,
        "seed": strategy.seed,
    }


def load_trajectory(path: str, space: SearchSpace, objective: Objective,
                    poisoned: Optional[set] = None) -> dict[Genome, Evaluation]:
    """Replay a trajectory log into a genome → evaluation memo.

    Scores and floors are recomputed from the stored cycles under the
    *current* objective, so a resumed search may re-rank prior points —
    the simulations stay reused either way.

    ``type="quarantined"`` records (written when a supervised run poisons
    a point — docs/SUPERVISION.md) are collected into ``poisoned`` when a
    set is passed, so a resumed search skips them without re-simulating.
    """
    memo: dict[Genome, Evaluation] = {}
    try:
        with open(path) as f:
            lines = f.readlines()
    except OSError as exc:
        raise ConfigError(f"cannot read trajectory {path}: {exc}") from None
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"trajectory {path}:{lineno}: invalid JSON: {exc}") from None
        if record.get("type") == "header":
            if (record.get("num_npus") != space.num_npus
                    or record.get("collective") != space.collective.value
                    or record.get("size_bytes") != space.size_bytes):
                raise ConfigError(
                    f"trajectory {path} was recorded for a different space "
                    f"({record.get('num_npus')} NPUs, "
                    f"{record.get('collective')}, "
                    f"{record.get('size_bytes')} bytes)")
            continue
        if record.get("type") == "quarantined":
            if poisoned is not None:
                poisoned.add(
                    space.canonical(tuple(int(g) for g in record["genome"])))
            continue
        genome = space.canonical(tuple(int(g) for g in record["genome"]))
        point = space.decode(genome)
        cycles = float(record["duration_cycles"])
        memo[genome] = Evaluation(
            genome=genome,
            label=point.label,
            duration_cycles=cycles,
            score=objective.score(point, cycles),
            floor_cycles=floor_cycles(point, space.collective.value,
                                      space.size_bytes),
            dollars=objective.dollars(point),
        )
    return memo


def run_search(
    space: SearchSpace,
    objective: Objective,
    strategy: Strategy,
    budget: int,
    executor: Optional[object] = None,
    trajectory_path: Optional[str] = None,
    resume: bool = False,
) -> list[Evaluation]:
    """Run the search until ``budget`` unique points are evaluated.

    Returns every evaluation in visit order (the trajectory).  Proposals
    already in the memo are re-told to the strategy but cost nothing and
    do not consume budget; the loop also stops after
    :data:`_STALE_ROUNDS` generations without a new unique point, or
    when the strategy stops proposing.
    """
    from repro.parallel import RunPoint, default_executor

    if budget < 1:
        raise ConfigError(f"search budget must be >= 1, got {budget}")
    ex = executor if executor is not None else default_executor()

    memo: dict[Genome, Evaluation] = {}
    #: Genomes a supervised run quarantined (this run or a resumed one):
    #: never re-proposed, never re-simulated, never scored.
    poisoned: set[Genome] = set()
    if resume:
        if not trajectory_path:
            raise ConfigError("--resume needs a trajectory path")
        if os.path.exists(trajectory_path):
            memo = load_trajectory(trajectory_path, space, objective,
                                   poisoned=poisoned)

    log = None
    if trajectory_path:
        fresh = not (resume and os.path.exists(trajectory_path)
                     and os.path.getsize(trajectory_path) > 0)
        log = open(trajectory_path, "w" if fresh else "a")
        if fresh:
            json.dump(_trajectory_header(space, objective, strategy), log)
            log.write("\n")

    trajectory: list[Evaluation] = []
    evaluated = 0
    stale = 0
    try:
        while evaluated < budget and stale < _STALE_ROUNDS:
            asked = strategy.ask()
            if not asked:
                break
            canon = [space.canonical(g) for g in asked]

            # New unique genomes this generation, in proposal order,
            # capped to the remaining budget.
            fresh_genomes: list[Genome] = []
            batch_seen: set[Genome] = set()
            for genome in canon:
                if genome in memo or genome in batch_seen or genome in poisoned:
                    continue
                if evaluated + len(fresh_genomes) >= budget:
                    break
                batch_seen.add(genome)
                fresh_genomes.append(genome)

            if fresh_genomes:
                stale = 0
                points = [space.decode(g) for g in fresh_genomes]
                run_points = [
                    RunPoint(
                        builder=functools.partial(platform_for_point, point),
                        op=space.collective,
                        size_bytes=space.size_bytes,
                    )
                    for point in points
                ]
                outcomes = ex.run_outcomes(run_points)
                for genome, point, outcome in zip(fresh_genomes, points,
                                                  outcomes):
                    if not outcome.ok:
                        # Poison point: record the gap in the frontier
                        # and the trajectory, keep searching.
                        poisoned.add(genome)
                        if log is not None:
                            json.dump({
                                "type": "quarantined",
                                "genome": list(genome),
                                "label": point.label,
                                "failure_class": outcome.failure_class,
                                "error": outcome.error,
                            }, log)
                            log.write("\n")
                        continue
                    result = outcome.result
                    evaluation = Evaluation(
                        genome=genome,
                        label=point.label,
                        duration_cycles=result.duration_cycles,
                        score=objective.score(point, result.duration_cycles),
                        floor_cycles=floor_cycles(point, space.collective.value,
                                                  space.size_bytes),
                        dollars=objective.dollars(point),
                    )
                    memo[genome] = evaluation
                    trajectory.append(evaluation)
                    evaluated += 1
                    if log is not None:
                        json.dump(evaluation.to_dict(), log)
                        log.write("\n")
                if log is not None:
                    log.flush()
            else:
                stale += 1

            strategy.tell([(g, memo[g].score) for g in canon if g in memo])
    finally:
        if log is not None:
            log.close()
    return trajectory


def rank_frontier(evaluations: list[Evaluation],
                  memo_extra: Optional[dict[Genome, Evaluation]] = None
                  ) -> list[Evaluation]:
    """All known evaluations, best score first; ties break on the label
    then genome so the ranking is stable across runs and job counts."""
    merged: dict[Genome, Evaluation] = {}
    if memo_extra:
        merged.update(memo_extra)
    for evaluation in evaluations:
        merged[evaluation.genome] = evaluation
    ranked = list(merged.values())
    for evaluation in ranked:
        if not math.isfinite(evaluation.score):
            raise ConfigError(
                f"non-finite score for {evaluation.label}: {evaluation.score}")
    ranked.sort(key=lambda e: (e.score, e.label, e.genome))
    return ranked
