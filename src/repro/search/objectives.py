"""Pluggable scoring for search candidates.

An :class:`Objective` turns a simulated point into one scalar score —
**lower is better** for every objective, so the driver and strategies
never branch on direction.  Three objectives ship:

* ``time`` — raw collective completion time in cycles.
* ``cost`` — amortized $/step: platform capital cost (NPUs + links +
  switches, priced by the :class:`~repro.analytical.cost_models.CostTable`)
  spread over the platform lifetime, charged for the cycles the
  collective occupies.  Favors cheap platforms that are still fast.
* ``perf-per-link-dollar`` — negated delivered GB/s per interconnect
  dollar (negated so lower stays better).  Ranks network provisioning
  only; NPU cost cancels out.

Every objective also computes the alpha-beta bandwidth floor for its
point (:func:`~repro.analytical.cost_models.bandwidth_lower_bound_cycles`)
so the report can flag any simulated time that impossibly beats it.
"""

from __future__ import annotations

from repro.analytical.cost_models import (
    CostTable,
    bandwidth_lower_bound_cycles,
    dollars_per_step,
    link_dollars,
    perf_per_link_dollar,
)
from repro.errors import ConfigError
from repro.search.space import SearchPoint

#: Names accepted by :func:`make_objective` (and the CLI ``--objective``).
OBJECTIVE_NAMES = ("time", "cost", "perf-per-link-dollar")

#: Simulator clock: 1 GHz, so 1 cycle = 1 ns (docs/PARAMETERS.md).
FREQUENCY_HZ = 1e9


def floor_cycles(point: SearchPoint, op: str, size_bytes: float) -> float:
    """Bandwidth lower bound for ``op`` on ``point``, in cycles.

    Uses each NPU's aggregate egress bytes/cycle: per-link GB/s x link
    efficiency, summed over the links the NPU drives (total links /
    NPUs), at 1 GHz.  A simulated duration below this is a bug.
    """
    counts = point.link_counts()
    local_gbps, package_gbps = point.bandwidths_gbps()
    n = point.num_npus
    # GB/s at 1 GHz is bytes/cycle; apply the paper's 94% efficiency.
    per_npu_bytes_per_cycle = (
        counts.local * local_gbps + counts.package * package_gbps
    ) * 0.94 / n
    return bandwidth_lower_bound_cycles(op, size_bytes, n,
                                        per_npu_bytes_per_cycle)


class Objective:
    """Base scorer.  ``score`` maps (point, simulated cycles) to a
    scalar where lower is better."""

    name = "objective"

    def __init__(self, cost_table: CostTable):
        self.cost_table = cost_table

    def score(self, point: SearchPoint, duration_cycles: float) -> float:
        raise NotImplementedError

    def dollars(self, point: SearchPoint) -> float:
        """Platform capital cost, reported alongside every score."""
        return point.dollars(self.cost_table)


class TimeObjective(Objective):
    """Raw collective completion time (cycles)."""

    name = "time"

    def score(self, point: SearchPoint, duration_cycles: float) -> float:
        return duration_cycles


class CostObjective(Objective):
    """Amortized $/step: capital cost x occupancy / lifetime."""

    name = "cost"

    def score(self, point: SearchPoint, duration_cycles: float) -> float:
        return dollars_per_step(self.dollars(point), duration_cycles,
                                self.cost_table, frequency_hz=FREQUENCY_HZ)


class PerfPerLinkDollarObjective(Objective):
    """Negated GB/s per interconnect dollar (lower is better)."""

    name = "perf-per-link-dollar"

    def __init__(self, cost_table: CostTable, size_bytes: float):
        super().__init__(cost_table)
        self.size_bytes = size_bytes

    def score(self, point: SearchPoint, duration_cycles: float) -> float:
        local_gbps, package_gbps = point.bandwidths_gbps()
        interconnect = link_dollars(point.link_counts(), local_gbps,
                                    package_gbps, self.cost_table)
        return -perf_per_link_dollar(self.size_bytes, duration_cycles,
                                     interconnect, frequency_hz=FREQUENCY_HZ)


def make_objective(name: str, cost_table: CostTable,
                   size_bytes: float) -> Objective:
    """Objective factory keyed by CLI name."""
    if name == "time":
        return TimeObjective(cost_table)
    if name == "cost":
        return CostObjective(cost_table)
    if name == "perf-per-link-dollar":
        return PerfPerLinkDollarObjective(cost_table, size_bytes)
    raise ConfigError(
        f"unknown objective {name!r}; expected one of {', '.join(OBJECTIVE_NAMES)}")
