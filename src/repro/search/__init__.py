"""Seeded design-space search over topology x BW x collective x scheduler.

The optimizer counterpart to the fixed Fig. 9-12 grids: a declarative
:class:`SearchSpace` (JSON-loadable, validated before any simulation),
pluggable lower-is-better :class:`Objective`s including cost/TCO
weighting, and seeded :class:`Strategy` implementations (random and
(mu+lambda) evolutionary) driven by :func:`run_search` through the
parallel executor and content-addressed run cache.  See docs/SEARCH.md.
"""

from repro.search.driver import Evaluation, load_trajectory, rank_frontier, run_search
from repro.search.objectives import (
    OBJECTIVE_NAMES,
    CostObjective,
    Objective,
    PerfPerLinkDollarObjective,
    TimeObjective,
    floor_cycles,
    make_objective,
)
from repro.search.report import SearchReport
from repro.search.space import (
    AXIS_NAMES,
    COLLECTIVE_NAMES,
    CONSTRAINT_KEYS,
    SPACE_KEYS,
    SearchPoint,
    SearchSpace,
    parse_shape_value,
    platform_for_point,
)
from repro.search.strategies import (
    STRATEGY_NAMES,
    EvolutionaryStrategy,
    RandomStrategy,
    Strategy,
    make_strategy,
)

__all__ = [
    "AXIS_NAMES",
    "COLLECTIVE_NAMES",
    "CONSTRAINT_KEYS",
    "OBJECTIVE_NAMES",
    "SPACE_KEYS",
    "STRATEGY_NAMES",
    "CostObjective",
    "Evaluation",
    "EvolutionaryStrategy",
    "Objective",
    "PerfPerLinkDollarObjective",
    "RandomStrategy",
    "SearchPoint",
    "SearchReport",
    "SearchSpace",
    "Strategy",
    "TimeObjective",
    "floor_cycles",
    "load_trajectory",
    "make_objective",
    "make_strategy",
    "parse_shape_value",
    "platform_for_point",
    "rank_frontier",
    "run_search",
]
