#!/usr/bin/env python
"""Pipeline-parallel training with GPipe-style microbatching.

Partitions an 8-layer MLP across four pipeline stages placed on an
8-package ring and sweeps the microbatch count, showing the pipeline
bubble shrink toward the GPipe ideal (S-1)/(M+S-1).

Run with::

    python examples/pipeline_parallel.py
"""

from repro import System, TorusShape, paper_simulation_config
from repro.config.units import KB
from repro.models import mlp
from repro.topology import build_torus_topology
from repro.workload import PipelineTrainingLoop, partition_model

STAGE_NODES = [0, 2, 4, 6]


def run(num_microbatches: int):
    config = paper_simulation_config()
    topology = build_torus_topology(TorusShape(1, 8, 1), config.network,
                                    config.system)
    system = System(topology, config)
    model = mlp(widths=(4096,) * 8, compute=config.compute)
    stages = partition_model(model, STAGE_NODES, num_microbatches,
                             activation_bytes=512 * KB)
    return PipelineTrainingLoop(system, stages, num_microbatches).run()


def main() -> None:
    print(f"{'microbatches':>12} {'total cycles':>14} {'bubble':>8} "
          f"{'GPipe ideal':>12}")
    for m in (1 + 1, 4, 8, 16, 32):
        report = run(m)
        print(f"{m:>12} {report.total_cycles:>14,.0f} "
              f"{report.bubble_fraction:>7.1%} "
              f"{report.ideal_bubble_fraction:>11.1%}")
    print("\nThe measured bubble tracks (S-1)/(M+S-1) plus the activation")
    print("transfer time the simulator charges on the stage-to-stage hops.")


if __name__ == "__main__":
    main()
