#!/usr/bin/env python
"""Define a DNN with the Fig. 8 workload file format and simulate it.

Shows the full round trip: author a workload description in the paper's
text format, parse it, run it, and write it back out.

Run with::

    python examples/custom_workload_file.py
"""

import tempfile

from repro import CollectiveAlgorithm, System, TorusShape, build_torus_topology
from repro import paper_simulation_config
from repro.analysis import RunSummary
from repro.workload import TrainingLoop, dumps, loads

#: A small hybrid-parallel network in the Fig. 8 format: parallelism
#: header, layer count, then per layer: name / compute times
#: (fwd, input-grad, weight-grad) / collective types / sizes / local
#: update time (cycles per KB).
WORKLOAD_TEXT = """
HYBRID data:local,horizontal model:vertical
3
conv_in
120000 110000 130000
NONE NONE ALLREDUCE
0 0 2097152
1.0
attention
180000 170000 190000
ALLGATHER ALLREDUCE ALLREDUCE
4194304 4194304 8388608
1.0
classifier
90000 85000 95000
NONE ALLREDUCE ALLREDUCE
0 4194304 4194304
1.0
"""


def main() -> None:
    model = loads(WORKLOAD_TEXT, name="custom-dnn")
    print(f"parsed {model.num_layers} layers, strategy={model.strategy.kind.value}")

    config = paper_simulation_config(algorithm=CollectiveAlgorithm.ENHANCED)
    topology = build_torus_topology(TorusShape(2, 2, 2), config.network,
                                    config.system)
    system = System(topology, config)
    report = TrainingLoop(system, model, num_iterations=2).run()
    print(RunSummary.from_report(report).format())

    # Round-trip the model back to the text format.
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write(dumps(model))
        print(f"\nworkload re-serialized to {f.name}:")
    print(dumps(model))


if __name__ == "__main__":
    main()
