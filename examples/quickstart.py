#!/usr/bin/env python
"""Quickstart: simulate two iterations of data-parallel ResNet-50 training
on a 2x4x4 hierarchical torus (the paper's Fig. 14/15 setup).

Run with::

    python examples/quickstart.py
"""

from repro import (
    CollectiveAlgorithm,
    System,
    TorusShape,
    TrainingLoop,
    build_torus_topology,
    paper_simulation_config,
    resnet50,
)
from repro.analysis import RunSummary, format_breakdown, format_layer_table


def main() -> None:
    # 1. Configuration: the paper's Table IV parameters with the enhanced
    #    (4-phase) hierarchical all-reduce.
    config = paper_simulation_config(algorithm=CollectiveAlgorithm.ENHANCED)

    # 2. Platform: 2 NAMs per package, 4x4 packages = 32 NPUs.
    topology = build_torus_topology(TorusShape(2, 4, 4), config.network,
                                    config.system)
    system = System(topology, config)

    # 3. Workload: ResNet-50, local minibatch 32, data-parallel, with
    #    layer compute delays from the analytical systolic-array model.
    model = resnet50(compute=config.compute, minibatch=32)

    # 4. Simulate two training iterations.
    report = TrainingLoop(system, model, num_iterations=2).run()

    # 5. Reports.
    print(RunSummary.from_report(report).format())
    print()
    print("First ten layers (cycles):")
    print(format_layer_table(report, max_rows=10))
    print()
    print("Queue/network delay breakdown (Fig. 12b style):")
    print(format_breakdown(system.breakdown))


if __name__ == "__main__":
    main()
