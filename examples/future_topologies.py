#!/usr/bin/env python
"""The paper's future-work topologies: 4D torus and scale-out fabrics.

Sec. III-C defers 4D/5D tori to future work and Sec. VII plans a
scale-out (Ethernet-class) extension; both are implemented here.  This
example all-reduces the same payload over 32 NPUs arranged three ways:

* a 3D torus 2x4x4 (the paper's main shape),
* a 4D torus 2x2x2x4 (one more, shorter, dimension),
* a scale-out system: four 2x2x2 scale-up pods ringed by 100 GbE-class
  links.

Run with::

    python examples/future_topologies.py
"""

from repro import (
    CollectiveAlgorithm,
    CollectiveOp,
    SimulationConfig,
    System,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB, format_bytes
from repro.network.physical import build_4d_torus, build_scaleout_torus
from repro.topology import LogicalTopology, build_torus_topology

SIZE = 8 * MB


def time_all_reduce(topology: LogicalTopology, network) -> float:
    config = SimulationConfig(
        system=SystemConfig(algorithm=CollectiveAlgorithm.ENHANCED),
        network=network,
    )
    system = System(topology, config)
    collective = system.request_collective(CollectiveOp.ALL_REDUCE, SIZE)
    system.run_until_idle(max_events=300_000_000)
    return collective.duration_cycles


def main() -> None:
    network = paper_network_config()
    print(f"all-reduce of {format_bytes(SIZE)} over 32 NPUs "
          f"(enhanced algorithm):\n")

    torus3d = build_torus_topology(TorusShape(2, 4, 4), network)
    print(f"  3D torus 2x4x4:              "
          f"{time_all_reduce(torus3d, network):>12,.0f} cycles")

    torus4d = LogicalTopology(build_4d_torus((2, 2, 2, 4), network))
    print(f"  4D torus 2x2x2x4:            "
          f"{time_all_reduce(torus4d, network):>12,.0f} cycles")

    scaleout = LogicalTopology(build_scaleout_torus((2, 2, 2), 4, network))
    print(f"  4 pods of 2x2x2 over 100GbE: "
          f"{time_all_reduce(scaleout, network):>12,.0f} cycles")

    print("\nShorter rings per dimension cut steps (4D benefit); pushing the")
    print("outermost dimension onto scale-out links shows why the enhanced")
    print("algorithm's volume reduction matters most on the slowest tier.")


if __name__ == "__main__":
    main()
