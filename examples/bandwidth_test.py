#!/usr/bin/env python
"""Collective bandwidth test (nccl-tests style) on the paper's platforms.

Prints latency, algorithm bandwidth and bus bandwidth per collective and
message size for a 4x4x4 asymmetric torus with the enhanced algorithm.
At the 1 GHz default clock, bytes/cycle reads directly as GB/s.

Run with::

    python examples/bandwidth_test.py
"""

from repro import CollectiveAlgorithm, CollectiveOp, TorusShape
from repro.config.units import KB, MB
from repro.harness import format_points, measure, torus_platform

SIZES = (64 * KB, 512 * KB, 4 * MB, 32 * MB)


def main() -> None:
    def platform():
        return torus_platform(TorusShape(4, 4, 4),
                              algorithm=CollectiveAlgorithm.ENHANCED)

    for op in (CollectiveOp.ALL_REDUCE, CollectiveOp.REDUCE_SCATTER,
               CollectiveOp.ALL_GATHER, CollectiveOp.ALL_TO_ALL):
        print(f"\n{op.value} on 4x4x4 (64 NPUs, enhanced):")
        points = measure(platform, op, SIZES)
        print(format_points(points))


if __name__ == "__main__":
    main()
