#!/usr/bin/env python
"""Compare collective performance across scale-up topologies (Sec. V-A/V-C).

Times an 8 MB all-reduce and all-to-all on:

* a 1x8x1 torus ring (four bidirectional rings, Fig. 9 setup),
* a 1x8 alltoall through seven global switches (Fig. 9 setup),
* a 4x4x4 asymmetric hierarchical torus, baseline vs enhanced algorithm
  (Fig. 11 setup).

Run with::

    python examples/topology_comparison.py
"""

from repro import (
    AllToAllShape,
    CollectiveAlgorithm,
    CollectiveOp,
    TorusShape,
)
from repro.config.units import MB, format_bytes
from repro.harness import alltoall_platform, run_collective, torus_platform

SIZE = 8 * MB


def time_platform(name: str, platform, op: CollectiveOp) -> None:
    result = run_collective(platform, op, SIZE)
    print(f"  {name:<38} {result.duration_cycles:>12,.0f} cycles")


def main() -> None:
    print(f"Collective payload: {format_bytes(SIZE)}\n")

    for op in (CollectiveOp.ALL_REDUCE, CollectiveOp.ALL_TO_ALL):
        print(f"{op.value}:")
        time_platform(
            "1x8x1 torus ring (4 bidir rings)",
            torus_platform(TorusShape(1, 8, 1), horizontal_rings=4),
            op,
        )
        time_platform(
            "1x8 alltoall (7 switches)",
            alltoall_platform(AllToAllShape(1, 8), global_switches=7),
            op,
        )
        time_platform(
            "4x4x4 asymmetric torus, baseline",
            torus_platform(TorusShape(4, 4, 4),
                           algorithm=CollectiveAlgorithm.BASELINE),
            op,
        )
        time_platform(
            "4x4x4 asymmetric torus, enhanced",
            torus_platform(TorusShape(4, 4, 4),
                           algorithm=CollectiveAlgorithm.ENHANCED),
            op,
        )
        print()


if __name__ == "__main__":
    main()
