#!/usr/bin/env python
"""SW/HW co-design exploration — the paper's headline use case.

Sweeps a slice of the Fig. 1 design space: topology family x shape x
collective algorithm x local-bandwidth asymmetry, for two all-reduce
payloads — a latency-bound 512 KB exchange and a bandwidth-bound 16 MB
one.  The winner flips between regimes, which is the paper's point: the
platform and the algorithm must be co-designed for the workload.

Run with::

    python examples/design_space_exploration.py
"""

from repro import (
    AllToAllShape,
    CollectiveAlgorithm,
    CollectiveOp,
    TorusShape,
)
from repro.analysis import ComparisonTable
from repro.config.units import MB
from repro.harness import alltoall_platform, run_collective, torus_platform

SIZES = {"512 KB (latency-bound)": MB // 2, "16 MB (bandwidth-bound)": 16 * MB}


def candidates():
    # 64 NPUs arranged several ways, baseline vs enhanced where it applies.
    return {
        "1x64x1 ring, baseline": torus_platform(
            TorusShape(1, 64, 1), horizontal_rings=4),
        "1x8x8 torus, baseline": torus_platform(TorusShape(1, 8, 8)),
        "4x4x4 torus, baseline": torus_platform(
            TorusShape(4, 4, 4), algorithm=CollectiveAlgorithm.BASELINE),
        "4x4x4 torus, enhanced": torus_platform(
            TorusShape(4, 4, 4), algorithm=CollectiveAlgorithm.ENHANCED),
        "4x4x4 symmetric, enhanced": torus_platform(
            TorusShape(4, 4, 4), algorithm=CollectiveAlgorithm.ENHANCED,
            symmetric=True),
        "4x16 alltoall, enhanced": alltoall_platform(
            AllToAllShape(4, 16), algorithm=CollectiveAlgorithm.ENHANCED,
            global_switches=4),
    }


def main() -> None:
    for title, size in SIZES.items():
        table = ComparisonTable(metric="cycles")
        for label, platform in candidates().items():
            result = run_collective(platform, CollectiveOp.ALL_REDUCE, size)
            table.add(label, result.duration_cycles)
        print(f"all-reduce of {title} across 64 NPUs:\n")
        print(table.format(baseline="1x64x1 ring, baseline"))
        print(f"\nbest configuration: {table.best()}\n")

    print("The co-design headline in one sweep: hierarchy + asymmetric")
    print("bandwidth + the algorithm that exploits them win the latency-bound")
    print("regime, while flat rings with minimal volume win once messages are")
    print("purely bandwidth-bound — the platform must match the workload.")


if __name__ == "__main__":
    main()
