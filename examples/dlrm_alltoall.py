#!/usr/bin/env python
"""DLRM-style recommendation training on the hierarchical alltoall fabric.

The paper motivates the all-to-all collective with DNNs that keep a
distributed key/value (embedding) table across nodes — DLRM.  This
example trains the DLRM workload on a 4x8 hierarchical alltoall platform
(4 NAMs per package, 8 packages through 2 global switches): embedding
exchanges run as all-to-all over the switch fabric, MLP weight gradients
all-reduce over the local rings.

Run with::

    python examples/dlrm_alltoall.py
"""

from repro import AllToAllShape, CollectiveAlgorithm, Dimension
from repro.analysis import RunSummary, format_layer_table
from repro.harness import alltoall_platform, run_training
from repro.models.dlrm import dlrm
from repro.workload import hybrid


def main() -> None:
    platform = alltoall_platform(
        AllToAllShape(local=4, packages=8),
        algorithm=CollectiveAlgorithm.ENHANCED,
        global_switches=2,
    )
    # Tables sharded across packages (the alltoall dimension); MLPs
    # replicated across the local rings.
    strategy = hybrid(
        data_dims=(Dimension.LOCAL,),
        model_dims=(Dimension.ALLTOALL,),
    )
    model = dlrm(compute=platform.config.compute, minibatch=256,
                 strategy=strategy)

    report, system = run_training(model, platform, num_iterations=2)
    print(RunSummary.from_report(report).format())
    print()
    print(format_layer_table(report))


if __name__ == "__main__":
    main()
