#!/usr/bin/env python
"""Logical-vs-physical topology mapping (Sec. IV-B).

The system layer works on a *logical* topology that may differ from the
physical one.  This example maps a logical 4-node ring onto a physical
8-node ring two ways — onto the even positions (each logical hop = two
physical links) and onto four adjacent nodes plus a long wrap path — and
compares ring all-reduce latency.  Sharing and longer physical paths
show up as extra serialization and queuing, exactly the trade-off the
paper's mapping feature exposes.

Run with::

    python examples/logical_mapping.py
"""

from repro import CollectiveOp, EventQueue, FastBackend, Message, TorusShape
from repro import paper_network_config
from repro.collectives import CollectiveContext, RingAllReduce
from repro.config.units import MB
from repro.dims import Dimension
from repro.network.physical import TorusFabric
from repro.topology import map_ring_over_ring


def time_all_reduce(ring, network, size_bytes: float) -> float:
    events = EventQueue()
    backend = FastBackend(events, network)
    ctx = CollectiveContext(backend)
    algorithm = RingAllReduce(ctx, ring, size_bytes)
    algorithm.start_all()
    events.run(max_events=5_000_000)
    assert algorithm.done
    return algorithm.finished_at


def main() -> None:
    network = paper_network_config()
    fabric = TorusFabric(TorusShape(1, 8, 1), network, horizontal_rings=1)
    physical = fabric.channels[Dimension.HORIZONTAL][(0, 0)][0]
    size = 4 * MB

    t_physical = time_all_reduce(physical, network, size)
    print(f"physical 8-ring all-reduce of 4 MB:        {t_physical:>12,.0f} cycles")

    evens = map_ring_over_ring(physical.nodes[::2], physical, name="even-4ring")
    t_evens = time_all_reduce(evens, network, size)
    print(f"logical 4-ring on even nodes (2 links/hop): {t_evens:>12,.0f} cycles")

    adjacent = map_ring_over_ring(physical.nodes[:4], physical, name="front-4ring")
    t_adjacent = time_all_reduce(adjacent, network, size)
    print(f"logical 4-ring on nodes 0-3 (5-link wrap):  {t_adjacent:>12,.0f} cycles")

    print()
    print("Fewer logical steps (6 vs 14) trade against longer physical hops;")
    print("the mapping API lets the system layer explore exactly this space.")


if __name__ == "__main__":
    main()
