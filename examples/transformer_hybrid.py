#!/usr/bin/env python
"""Hybrid-parallel Transformer training (the paper's Fig. 13 study).

Simulates two iterations of a 6-layer Transformer encoder on a 2x2x2
torus: data-parallel across the local and horizontal dimensions,
model-parallel across vertical.  Forward activations are all-gathered
and input gradients all-reduced across the model-parallel dimension
(both blocking), while weight gradients all-reduce across the
data-parallel dimensions and overlap with back-propagation.

Run with::

    python examples/transformer_hybrid.py
"""

from repro.analysis import RunSummary, layer_rows
from repro.harness.fig13 import run as run_fig13


def main() -> None:
    result = run_fig13(num_iterations=2)
    report = result.report

    print(RunSummary.from_report(report).format())
    print()
    print("Layer-wise raw communication time (two iterations, cycles):")
    print(f"{'layer':<14} {'fwd (act AG)':>14} {'ig (AR)':>14} {'wg (AR)':>14}")
    for row in layer_rows(report):
        print(f"{row.name:<14} {row.forward_comm_cycles:>14,.0f} "
              f"{row.input_grad_comm_cycles:>14,.0f} "
              f"{row.weight_grad_comm_cycles:>14,.0f}")

    encoder_rows = [r for r in layer_rows(report) if r.name.startswith("encoder")]
    times = [r.total_comm_cycles for r in encoder_rows]
    spread = (max(times) - min(times)) / max(times) if max(times) else 0.0
    print()
    print(f"Encoder layers are structurally identical: comm-time spread "
          f"across encoder1..encoder6 is {spread:.1%} (the paper's Fig. 13 "
          f"shows the same uniformity).")


if __name__ == "__main__":
    main()
